"""Randomized fault sweeps under the invariant checker.

One sweep case = one deterministic simulation: a cluster of one replication
style, a :class:`~repro.net.faults.FaultPlan` drawn from a seeded RNG
(i.i.d. loss, Gilbert-Elliott bursts, total network failures, severed
send/receive paths, partitions), random application traffic, and the
invariant checker watching every protocol event.  A correct implementation
reports zero violations for every seed; the ``repro.check sweep`` CLI runs
batches of cases across all three replication styles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..api.cluster import SimCluster
from ..config import ClusterConfig, TotemConfig
from ..errors import InvariantViolationError
from ..net.faults import FaultPlan
from ..types import ReplicationStyle
from .invariants import CheckMode, InvariantViolation

#: The styles a default sweep covers (every redundant style).
SWEEP_STYLES: Sequence[ReplicationStyle] = (
    ReplicationStyle.ACTIVE,
    ReplicationStyle.PASSIVE,
    ReplicationStyle.ACTIVE_PASSIVE,
)

_STYLE_NETWORKS = {
    ReplicationStyle.NONE: 1,
    ReplicationStyle.ACTIVE: 2,
    ReplicationStyle.PASSIVE: 2,
    ReplicationStyle.ACTIVE_PASSIVE: 3,
}


def random_fault_plan(rng: random.Random, num_networks: int,
                      num_nodes: int, duration: float) -> FaultPlan:
    """Draw a reproducible fault script for one sweep case.

    Faults start inside the first 70 % of the run; every network that was
    disturbed is healed at 85 % so the final stretch also exercises the
    restore paths (monitor counter resets, ring re-merge).
    """
    plan = FaultPlan()
    window_end = duration * 0.7
    disturbed = set()
    for net in range(num_networks):
        if rng.random() < 0.6:
            plan.set_loss(at=rng.uniform(0.0, window_end), network=net,
                          rate=rng.uniform(0.01, 0.15))
            disturbed.add(net)
        if rng.random() < 0.5:
            plan.set_burst_loss(at=rng.uniform(0.0, window_end), network=net,
                                p_good_to_bad=rng.uniform(0.002, 0.02),
                                p_bad_to_good=rng.uniform(0.1, 0.5))
            disturbed.add(net)
        if num_networks > 1 and rng.random() < 0.4:
            start = rng.uniform(0.0, window_end)
            plan.fail_network(at=start, network=net)
            plan.restore_network(
                at=start + rng.uniform(duration * 0.05, duration * 0.25),
                network=net)
        if rng.random() < 0.4:
            node = rng.randrange(1, num_nodes + 1)
            at = rng.uniform(0.0, window_end)
            if rng.random() < 0.5:
                plan.sever_send(at=at, network=net, node=node)
            else:
                plan.sever_recv(at=at, network=net, node=node)
            disturbed.add(net)
        if num_nodes >= 2 and rng.random() < 0.25:
            members = list(range(1, num_nodes + 1))
            rng.shuffle(members)
            cut = rng.randrange(1, num_nodes)
            plan.partition(at=rng.uniform(0.0, window_end), network=net,
                           groups=[members[:cut], members[cut:]])
            disturbed.add(net)
    for net in sorted(disturbed):
        plan.restore_network(at=duration * 0.85, network=net)
    return plan


@dataclass
class SweepCase:
    """The outcome of one randomized run."""

    style: ReplicationStyle
    seed: int
    num_nodes: int
    duration: float
    fault_events: int
    delivered: int
    violations: List[InvariantViolation] = field(default_factory=list)
    #: Strict-mode abort message, if the run was cut short by a violation.
    error: Optional[str] = None
    #: Rendered trace-recorder output (only when captured): one line per
    #: protocol event, in emission order.  Two same-seed runs must produce
    #: byte-identical text — the determinism regression tests diff this.
    trace_text: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not self.violations and self.error is None

    def summary(self) -> str:
        status = ("ok" if self.clean
                  else f"{len(self.violations)} violation(s)"
                       + (" [aborted]" if self.error else ""))
        return (f"{self.style.value:<15} seed={self.seed:<6} "
                f"faults={self.fault_events:<3} "
                f"delivered={self.delivered:<6} {status}")


def run_case(style: ReplicationStyle, seed: int, *,
             num_nodes: int = 4, duration: float = 1.0,
             mode: CheckMode = CheckMode.OBSERVE,
             messages: int = 120,
             capture_trace: bool = False) -> SweepCase:
    """Run one randomized case; pure function of its arguments."""
    rng = random.Random(f"{seed}:{style.value}")
    num_networks = _STYLE_NETWORKS[style]
    config = ClusterConfig(
        num_nodes=num_nodes,
        totem=TotemConfig(replication=style, num_networks=num_networks),
        seed=seed,
        invariants=mode.value)
    cluster = SimCluster(config)
    plan = random_fault_plan(rng, num_networks, num_nodes, duration)
    cluster.apply_fault_plan(plan)
    for _ in range(messages):
        at = rng.uniform(0.0, duration * 0.9)
        node_id = rng.randrange(1, num_nodes + 1)
        payload = bytes([rng.randrange(256)]) * rng.randrange(16, 256)
        cluster.scheduler.call_at(
            at, lambda n=node_id, p=payload: cluster.nodes[n].try_submit(p))
    cluster.start()
    error: Optional[str] = None
    try:
        cluster.run_until(duration)
        cluster.checker.check_all()
    except InvariantViolationError as exc:
        error = str(exc)
    trace_text = None
    if capture_trace:
        trace_text = "\n".join(str(event) for event in cluster.tracer.events())
    return SweepCase(
        style=style, seed=seed, num_nodes=num_nodes, duration=duration,
        fault_events=len(plan.events),
        delivered=cluster.total_delivered(),
        violations=list(cluster.checker.violations),
        error=error,
        trace_text=trace_text)


@dataclass
class SweepReport:
    """All cases of one sweep."""

    cases: List[SweepCase] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(case.clean for case in self.cases)

    @property
    def total_violations(self) -> int:
        return sum(len(case.violations) for case in self.cases)

    #: A buggy engine violates the ledger on every token receipt; cap the
    #: per-case dump so the report stays readable.
    MAX_VIOLATIONS_SHOWN = 8

    def render(self, include_cases: bool = True) -> str:
        lines = [case.summary() for case in self.cases] if include_cases else []
        for case in self.cases:
            shown = case.violations[:self.MAX_VIOLATIONS_SHOWN]
            for violation in shown:
                lines.append(f"  {case.style.value} seed={case.seed}: "
                             f"{violation}")
            hidden = len(case.violations) - len(shown)
            if hidden:
                lines.append(f"  {case.style.value} seed={case.seed}: "
                             f"... and {hidden} more")
        verdict = ("PASS: no invariant violations"
                   if self.clean else
                   f"FAIL: {self.total_violations} invariant violation(s)")
        lines.append(f"{len(self.cases)} case(s) — {verdict}")
        return "\n".join(lines)


def run_sweep(styles: Sequence[ReplicationStyle] = SWEEP_STYLES,
              runs_per_style: int = 3, base_seed: int = 1, *,
              num_nodes: int = 4, duration: float = 1.0,
              mode: CheckMode = CheckMode.OBSERVE,
              messages: int = 120,
              capture_trace: bool = False,
              progress=None) -> SweepReport:
    """Run ``runs_per_style`` randomized cases for each style."""
    report = SweepReport()
    for style in styles:
        for run in range(runs_per_style):
            case = run_case(style, base_seed + run, num_nodes=num_nodes,
                            duration=duration, mode=mode, messages=messages,
                            capture_trace=capture_trace)
            report.cases.append(case)
            if progress is not None:
                progress(case)
    return report
