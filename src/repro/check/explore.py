"""Exhaustive schedule/fault exploration for tiny clusters (model checking).

``repro.check explore`` turns the deterministic simulator into a stateful
model checker: starting from one root world (a tiny cluster with a fixed
workload), it enumerates *every* schedule the event scheduler could produce
— and every fault the fault model could inject — up to a bounded number of
deviations from the canonical schedule, judging every complete path with
the protocol invariant checker (paper requirements A1-A6 / P1-P5) and the
campaign's application-level EVS oracles.

How the search works
--------------------

* The world is a :class:`~repro.api.cluster.SimCluster` plus exploration
  bookkeeping, forked with ``copy.deepcopy`` at each branch point (the
  simulator holds no hidden global state, so a deep copy *is* a snapshot).
* The scheduler's explorer hooks (:meth:`ready_entries`,
  :meth:`fire_entry`, :meth:`discard_entry`) expose the set of live events
  at the earliest pending timestamp.  Firing them in insertion order is
  exactly the canonical schedule; firing any other ready event first, or
  discarding a pending frame arrival (= the frame is lost on the medium),
  is a *deviation*.
* Depth is counted in deviations, not events: the canonical continuation
  is free, so ``--max-depth d`` means "all behaviours at most ``d``
  deviations away from the deterministic run".  Iterative deepening stops
  at the first depth where no branch was truncated — the search is then
  exhaustive for the configured fault budget.
* Partial-order reduction: two ready events commute when their *affinity
  sets* (the nodes/LANs whose state they touch) are disjoint — per-node
  protocol handlers and CPU jobs only touch their own node, frame fanouts
  only touch their receivers, and only LAN-port transmit jobs touch the
  shared medium.  A ready set of pairwise-independent events with no fault
  alternatives is fired as one macro-step without branching.  This relies
  on the cost model never scheduling a zero-delay follow-up at the *same*
  timestamp that could conflict (CPU costs and wire times are strictly
  positive); ``--no-por`` disables the reduction for cross-checking.
* Worlds are deduplicated on :func:`repro.check.digest.cluster_digest`, a
  canonical hash of all protocol, network and scheduler state.  A world
  seen before with at least as much remaining depth *and* fault budget
  cannot lead anywhere new and is pruned.

Fault alphabet
--------------

``drop`` (default) discards one pending frame-arrival event — the medium
lost the frame for every receiver, the same semantics as the campaign
DSL's targeted ``drop_frame`` fault, whose (network, src, serial) address
the explorer records so violating paths can be replayed through the
campaign runner.  ``crash``, ``restart``, ``partition`` and ``heal`` widen
the alphabet to node churn and network partitions (these export as the
DSL's ``crash``/``restart``/``partition_all``/``heal_all`` events).
``drop``, ``crash`` and ``partition`` consume the shared ``--budget``;
``restart``/``heal`` are restorative and free.

Every complete path runs to ``horizon`` under exploration, then settles
deterministically for ``settle`` more virtual seconds (so retransmission
and membership recovery get to finish), and is judged by:

* the invariant checker (attached in ``observe`` mode from t=0),
* the EVS ledger cross-check (:meth:`assert_evs_consistency`),
* campaign oracles: agreement, no-duplicates, sender-FIFO, and — for
  paths within the redundancy budget (only frame drops, at least one
  untouched network) — whole-run total order plus transparency against
  the fault-free twin run.

Violating paths are exported both as a replayable campaign scenario
(``*.json``, verified by re-running it through the campaign runner) and as
an exact decision trace (``*.trace.json``) replayable with ``--replay``.
"""

from __future__ import annotations

import copy
import json
import os
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..campaign.oracles import (
    NodeHistory,
    OracleViolation,
    check_agreement,
    check_no_duplicates,
    check_sender_fifo,
    check_total_order,
    check_transparency,
)
from ..campaign.runner import make_payload, payload_uid, run_scenario
from ..campaign.scenario import Scenario, TimelineEvent, save_scenario
from ..config import ClusterConfig, LanConfig, TotemConfig
from ..errors import ConfigError
from ..net.simlan import LanPort, SimLan
from ..net.stack import NodeCpu
from ..sim.scheduler import _ARGS, _CALLBACK, _COUNTER, _WHEN
from ..srp.engine import SrpState
from ..types import ReplicationStyle
from .digest import cluster_digest

#: Fault kinds the explorer knows how to inject.
FAULT_ALPHABET = ("drop", "crash", "restart", "partition", "heal")

#: Frame kinds a ``drop`` deviation may target (wire packet type names).
DROP_KINDS = ("data", "token", "join", "commit")

_PACKET_KIND = {
    "DataPacket": "data",
    # A batch frame train is data traffic: dropping it loses every carried
    # packet at once (one loss draw per frame, exactly like the real LAN).
    "BatchPacket": "data",
    "Token": "token",
    "JoinMessage": "join",
    "CommitToken": "commit",
}


@dataclass
class ExploreOptions:
    """Knobs for one exploration (see the module docstring)."""

    nodes: int = 2
    networks: int = 2
    max_msgs: int = 2
    style: ReplicationStyle = ReplicationStyle.ACTIVE
    seed: int = 1
    #: Virtual-time bound on exploration; events after this run canonically.
    horizon: float = 0.02
    #: Deterministic cool-down before judging a path (recovery must fit).
    settle: float = 0.6
    #: Iterative-deepening ceiling on deviations per path.
    max_depth: int = 4
    #: Shared budget for budget-consuming faults (drop/crash/partition).
    fault_budget: int = 1
    faults: Tuple[str, ...] = ("drop",)
    #: Restrict drop deviations to these frame kinds (default: all).
    drop_kinds: Tuple[str, ...] = DROP_KINDS
    por: bool = True
    max_states: int = 500_000
    max_violations: int = 10
    #: Wall-clock safety valve (seconds); 0 disables.
    time_limit: float = 0.0
    msg_size: int = 64
    export_dir: Optional[str] = None
    #: Explore the batched send path (one frame train per token visit)
    #: instead of per-frame broadcasts.  Default off, matching TotemConfig.
    batching: bool = False

    def validate(self) -> None:
        if self.nodes < 2:
            raise ConfigError("explore needs at least 2 nodes")
        if self.max_msgs < 1:
            raise ConfigError("explore needs at least 1 message")
        unknown = set(self.faults) - set(FAULT_ALPHABET)
        if unknown:
            raise ConfigError(f"unknown fault kinds: {sorted(unknown)}")
        unknown = set(self.drop_kinds) - set(DROP_KINDS)
        if unknown:
            raise ConfigError(f"unknown drop kinds: {sorted(unknown)}")
        if self.horizon <= 0 or self.settle < 0:
            raise ConfigError("horizon must be > 0 and settle >= 0")

    def to_dict(self) -> dict:
        data = self.__dict__.copy()
        data["style"] = self.style.value
        data["faults"] = list(self.faults)
        data["drop_kinds"] = list(self.drop_kinds)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ExploreOptions":
        data = dict(data)
        data["style"] = ReplicationStyle(data["style"])
        data["faults"] = tuple(data["faults"])
        data["drop_kinds"] = tuple(data["drop_kinds"])
        return cls(**data)


@dataclass
class ExploreViolation:
    """One violating path, with everything needed to reproduce it."""

    index: int
    oracles: List[OracleViolation]
    decisions: List[tuple]
    depth: int
    scenario_path: Optional[str] = None
    trace_path: Optional[str] = None
    #: The exported scenario re-ran through the campaign runner and failed
    #: the same way (the counterexample is independently replayable).
    replay_verified: bool = False

    def summary(self) -> str:
        deviations = [d for d in self.decisions if d[0] != "fire"]
        head = (f"violation #{self.index}: {len(self.oracles)} oracle "
                f"breach(es) after {len(deviations)} deviation(s)")
        lines = [head]
        for deviation in deviations:
            lines.append(f"  deviation: {_describe_decision(deviation)}")
        for violation in self.oracles[:4]:
            lines.append(f"  {violation}")
        if len(self.oracles) > 4:
            lines.append(f"  ... and {len(self.oracles) - 4} more")
        if self.scenario_path:
            status = "verified" if self.replay_verified else "UNVERIFIED"
            lines.append(f"  scenario: {self.scenario_path} ({status})")
        if self.trace_path:
            lines.append(f"  trace:    {self.trace_path}")
        return "\n".join(lines)


@dataclass
class ExploreReport:
    """Search statistics plus every violating path found."""

    options: ExploreOptions
    states: int = 0
    paths: int = 0
    dedup_hits: int = 0
    branch_points: int = 0
    events_fired: int = 0
    depth_reached: int = 0
    exhaustive: bool = False
    overflowed: bool = False
    timed_out: bool = False
    elapsed: float = 0.0
    iterations: List[Tuple[int, int, bool]] = field(default_factory=list)
    violations: List[ExploreViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def render(self) -> str:
        o = self.options
        lines = [
            f"explore style={o.style.value} nodes={o.nodes} "
            f"networks={o.networks} msgs={o.max_msgs} seed={o.seed} "
            f"horizon={o.horizon}s faults={','.join(o.faults)} "
            f"budget={o.fault_budget} por={'on' if o.por else 'off'}"
        ]
        for depth, paths, truncated in self.iterations:
            note = "truncated" if truncated else "complete"
            lines.append(f"  depth {depth}: {paths} path(s), {note}")
        coverage = ("exhaustive" if self.exhaustive else
                    "state cap hit" if self.overflowed else
                    "time limit hit" if self.timed_out else
                    f"bounded at depth {self.depth_reached}")
        lines.append(
            f"{coverage}: states={self.states} paths={self.paths} "
            f"dedup-hits={self.dedup_hits} branch-points={self.branch_points} "
            f"events={self.events_fired} in {self.elapsed:.1f}s wall clock")
        if self.violations:
            lines.append(f"{len(self.violations)} violating path(s):")
            for violation in self.violations:
                lines.append(violation.summary())
        else:
            lines.append("no violations found")
        return "\n".join(lines)


def _describe_decision(decision: tuple) -> str:
    kind = decision[0]
    if kind == "fire":
        return f"t={decision[2]:.6f} fire event #{decision[1]}"
    if kind == "reorder":
        return (f"t={decision[2]:.6f} fire event #{decision[1]} "
                f"ahead of its turn")
    if kind == "drop":
        _, _counter, t, network, src, serial, pkind = decision
        return (f"t={t:.6f} drop {pkind} frame net{network} "
                f"src={src} serial={serial}")
    if kind == "crash":
        return f"t={decision[2]:.6f} crash node {decision[1]}"
    if kind == "restart":
        return f"t={decision[2]:.6f} restart node {decision[1]}"
    if kind == "partition":
        return f"t={decision[2]:.6f} partition {decision[1]}"
    if kind == "heal":
        return f"t={decision[1]:.6f} heal all networks"
    return repr(decision)


class _StopSearch(Exception):
    """Unwinds the DFS when a stop condition (cap, limit) is reached."""


@dataclass
class _World:
    """One forked simulation state plus path bookkeeping.

    Everything here is reachable from plain attributes so ``deepcopy``
    forks the whole world consistently (node references inside
    ``incarnations`` follow the cluster copy through the memo table).
    """

    cluster: object
    #: Choices made at branch points, in order (the replayable path).
    decisions: List[tuple] = field(default_factory=list)
    #: (node, incarnation, TotemNode) for every incarnation ever started.
    incarnations: List[tuple] = field(default_factory=list)
    incarnation_count: Dict[int, int] = field(default_factory=dict)
    crashed: set = field(default_factory=set)
    partitioned: bool = False
    budget: int = 0


@dataclass
class _EntryInfo:
    """Classification of one ready scheduler entry."""

    entry: list
    #: Affinity tokens; disjoint token sets => the events commute.
    tokens: FrozenSet[tuple]
    #: ("global",) anywhere means "conflicts with everything".
    global_conflict: bool
    #: (network, src, serial, packet kind) when the entry is a frame
    #: arrival the drop fault can discard; None otherwise.
    drop: Optional[Tuple[int, int, int, str]] = None


class Explorer:
    """Depth-first schedule/fault enumerator over forked simulator worlds."""

    def __init__(self, options: ExploreOptions) -> None:
        options.validate()
        self.o = options
        self.report = ExploreReport(options=options)
        #: digest -> (remaining deviations, remaining budget) already
        #: explored from that state; dominated revisits are pruned.
        self._visited: Dict[str, Tuple[int, int]] = {}
        self._twin_delivered: Optional[Dict[int, frozenset]] = None
        self._deadline = (time.time() + options.time_limit
                          if options.time_limit else None)
        self._export_count = 0

    # ----- root world & fault-free twin -----

    def _config(self) -> ClusterConfig:
        o = self.o
        return ClusterConfig(
            num_nodes=o.nodes,
            totem=TotemConfig(num_networks=o.networks, replication=o.style,
                              enable_batching=o.batching),
            lan=LanConfig(loss_rate=0.0),
            seed=o.seed,
            invariants="observe",
            obs="off")

    def _workload(self) -> List[Tuple[int, int]]:
        """(sender, uid) pairs, round-robin over the nodes."""
        counts: Dict[int, int] = {}
        plan = []
        for i in range(self.o.max_msgs):
            sender = (i % self.o.nodes) + 1
            counts[sender] = counts.get(sender, 0) + 1
            plan.append((sender, counts[sender]))
        return plan

    def _root(self):
        from ..api.cluster import SimCluster
        cluster = SimCluster(self._config())
        cluster.start(preformed=True)
        for sender, uid in self._workload():
            accepted = cluster.nodes[sender].try_submit(
                make_payload(sender, uid, self.o.msg_size))
            if not accepted:
                raise ConfigError(
                    "workload rejected at submission; lower --max-msgs")
        world = _World(cluster=cluster, budget=self.o.fault_budget)
        for node_id, node in sorted(cluster.nodes.items()):
            world.incarnations.append((node_id, 0, node))
            world.incarnation_count[node_id] = 0
        return world

    def _twin(self) -> Dict[int, frozenset]:
        """Delivered (sender, uid) sets of the canonical fault-free run."""
        if self._twin_delivered is None:
            world = self._root()
            world.cluster.run_until(self.o.horizon + self.o.settle)
            self._twin_delivered = self._delivered_map(world)
        return self._twin_delivered

    @staticmethod
    def _delivered_map(world) -> Dict[int, frozenset]:
        delivered: Dict[int, frozenset] = {}
        for node_id, _inc, node in world.incarnations:
            uids = set(delivered.get(node_id, frozenset()))
            for message in node.log.messages:
                uid = payload_uid(message.payload)
                if uid is not None:
                    uids.add((message.sender, uid))
            delivered[node_id] = frozenset(uids)
        return delivered

    # ----- entry classification (affinity + droppability) -----

    def _classify(self, world, entry: list) -> _EntryInfo:
        callback = entry[_CALLBACK]
        args = entry[_ARGS]
        owner = getattr(callback, "__self__", None)
        if isinstance(owner, SimLan) and callback.__name__ == "_fanout":
            src, packet, fanout, serial = args
            tokens = frozenset(("node", node) for _deliver, node in fanout)
            kind = _PACKET_KIND.get(type(packet).__name__, "data")
            drop = None
            if ("drop" in self.o.faults and world.budget > 0
                    and kind in self.o.drop_kinds):
                drop = (owner.index, src, serial, kind)
            return _EntryInfo(entry, tokens, False, drop)
        if isinstance(owner, NodeCpu) and callback.__name__ == "_finish":
            node_id = self._cpu_owner(world, owner)
            if node_id is None:
                return _EntryInfo(entry, frozenset(), True)
            tokens = {("node", node_id)}
            fn = args[0]
            port = getattr(fn, "__self__", None)
            if isinstance(port, LanPort):
                # A transmit job: it serialises on the shared medium and
                # bumps the LAN's frame-serial counter, so two transmits on
                # the same LAN never commute.
                tokens.add(("lan", port.network_index))
            return _EntryInfo(entry, frozenset(tokens), False)
        if owner is not None:
            node_id = getattr(owner, "node_id", None)
            if isinstance(node_id, int):
                return _EntryInfo(
                    entry, frozenset({("node", node_id)}), False)
        return _EntryInfo(entry, frozenset(), True)

    @staticmethod
    def _cpu_owner(world, cpu) -> Optional[int]:
        for node_id, node in world.cluster.nodes.items():
            if node.cpu is cpu:
                return node_id
        return None  # a dead incarnation's CPU

    @staticmethod
    def _pairwise_independent(infos: Sequence[_EntryInfo]) -> bool:
        for i, a in enumerate(infos):
            if a.global_conflict:
                return len(infos) == 1
            for b in infos[i + 1:]:
                if b.global_conflict or (a.tokens & b.tokens):
                    return False
        return True

    # ----- fault actions beyond drop -----

    def _fault_actions(self, world) -> List[tuple]:
        actions: List[tuple] = []
        o = self.o
        alive = [n for n in world.cluster.nodes if n not in world.crashed]
        if "crash" in o.faults and world.budget > 0 and len(alive) > 1:
            actions.extend(("crash", node) for node in alive)
        if "restart" in o.faults:
            actions.extend(("restart", node)
                           for node in sorted(world.crashed))
        if ("partition" in o.faults and world.budget > 0
                and not world.partitioned and len(alive) > 2):
            # One canonical split per isolated node; richer splits only
            # matter from 5 nodes up, beyond the tiny-config scope.
            for node in alive:
                rest = tuple(n for n in alive if n != node)
                actions.append(("partition", ((node,), rest)))
        if "heal" in o.faults and world.partitioned:
            actions.append(("heal",))
        return actions

    # ----- the DFS itself -----

    def run(self) -> ExploreReport:
        started = time.time()
        self._twin()  # compute (and cache) before the search clock starts
        depth = 0
        while True:
            self._truncated = False
            paths_before = self.report.paths
            try:
                self._dfs(self._root(), depth)
            except _StopSearch:
                pass
            self.report.iterations.append(
                (depth, self.report.paths - paths_before, self._truncated))
            self.report.depth_reached = depth
            done = (self.report.violations or not self._truncated
                    or self.report.overflowed or self.report.timed_out
                    or depth >= self.o.max_depth)
            if done:
                break
            depth += 1
        self.report.exhaustive = (not self._truncated
                                  and not self.report.overflowed
                                  and not self.report.timed_out
                                  and not self.report.violations)
        self.report.elapsed = time.time() - started
        return self.report

    def _dfs(self, world, remaining: int) -> None:
        scheduler = world.cluster.scheduler
        o = self.o
        while True:
            if self._deadline is not None and time.time() > self._deadline:
                self.report.timed_out = True
                raise _StopSearch
            ready = scheduler.ready_entries()
            if not ready or ready[0][_WHEN] > o.horizon:
                self._judge_leaf(world)
                return
            infos = [self._classify(world, entry) for entry in ready]
            droppable = [info for info in infos if info.drop is not None]
            actions = self._fault_actions(world)
            independent = self._pairwise_independent(infos)
            if not droppable and not actions:
                if len(ready) == 1 or (o.por and independent):
                    # No choice to make: fire the whole independent ready
                    # set as one canonical macro-step.
                    fire = ready if o.por else ready[:1]
                    for entry in fire:
                        scheduler.fire_entry(entry)
                        self.report.events_fired += 1
                    continue
            # A genuine branch point: dedup, then expand.
            digest = cluster_digest(world.cluster)
            seen = self._visited.get(digest)
            if (seen is not None and seen[0] >= remaining
                    and seen[1] >= world.budget):
                self.report.dedup_hits += 1
                return
            if seen is None:
                self.report.states += 1
                if self.report.states > o.max_states:
                    self.report.overflowed = True
                    raise _StopSearch
            self._visited[digest] = (remaining, world.budget)
            self.report.branch_points += 1
            now = scheduler.clock._now
            t_next = ready[0][_WHEN]
            deviations: List[tuple] = []
            if not (o.por and independent):
                # Non-canonical orderings only matter among conflicting
                # events; with POR and an independent ready set they are
                # provably equivalent to the canonical order.
                deviations.extend(
                    ("fire", info.entry) for info in infos[1:])
            deviations.extend(("drop", info) for info in droppable)
            deviations.extend(("action", action) for action in actions)
            if remaining <= 0 and deviations:
                self._truncated = True
            else:
                for deviation in deviations:
                    child = copy.deepcopy(world)
                    self._apply_deviation(child, deviation, now, t_next)
                    self._dfs(child, remaining - 1)
            # Canonical continuation, in place (this world is ours).
            world.decisions.append(("fire", ready[0][_COUNTER], t_next))
            scheduler.fire_entry(ready[0])
            self.report.events_fired += 1

    def _apply_deviation(self, world, deviation: tuple,
                         now: float, t_next: float) -> None:
        scheduler = world.cluster.scheduler
        kind, payload = deviation
        if kind == "fire":
            counter = payload[_COUNTER]
            entry = self._entry_by_counter(scheduler, counter)
            world.decisions.append(("reorder", counter, t_next))
            scheduler.fire_entry(entry)
            self.report.events_fired += 1
            return
        if kind == "drop":
            counter = payload.entry[_COUNTER]
            network, src, serial, pkind = payload.drop
            entry = self._entry_by_counter(scheduler, counter)
            world.decisions.append(
                ("drop", counter, t_next, network, src, serial, pkind))
            scheduler.discard_entry(entry)
            world.budget -= 1
            return
        action = payload
        if action[0] == "crash":
            node = action[1]
            world.decisions.append(("crash", node, now, t_next))
            world.cluster.crash_node(node)
            world.crashed.add(node)
            world.budget -= 1
        elif action[0] == "restart":
            node = action[1]
            world.decisions.append(("restart", node, now, t_next))
            fresh = world.cluster.restart_node(node, start=False)
            world.crashed.discard(node)
            incarnation = world.incarnation_count[node] + 1
            world.incarnation_count[node] = incarnation
            world.incarnations.append((node, incarnation, fresh))
            fresh.start(None)
        elif action[0] == "partition":
            groups = action[1]
            world.decisions.append(("partition", groups, now, t_next))
            world.cluster.partition_cluster([list(g) for g in groups])
            world.partitioned = True
            world.budget -= 1
        elif action[0] == "heal":
            world.decisions.append(("heal", now, t_next))
            world.cluster.heal_cluster()
            world.partitioned = False

    @staticmethod
    def _entry_by_counter(scheduler, counter: int) -> list:
        for entry in scheduler.ready_entries():
            if entry[_COUNTER] == counter:
                return entry
        raise RuntimeError(f"ready entry #{counter} vanished after fork")

    # ----- leaf judgement -----

    def _within_budget(self, world) -> bool:
        """Only maskable deviations, with at least one untouched network."""
        networks = set()
        for decision in world.decisions:
            if decision[0] in ("fire", "reorder"):
                # A re-ordering is a legal schedule, not a fault: the
                # delivery guarantees must hold on it unconditionally.
                continue
            if decision[0] != "drop":
                return False
            networks.add(decision[3])
        return len(networks) < self.o.networks

    #: Settle slicing: always run at least the floor (covers the token
    #: retransmission window after a drop near the horizon), then extend in
    #: slices until converged or the full settle window is spent.
    _SETTLE_FLOOR = 0.02
    _SETTLE_SLICE = 0.05

    def _judge_leaf(self, world) -> None:
        self.report.paths += 1
        cluster = world.cluster
        end = self.o.horizon + self.o.settle
        t = min(end, self.o.horizon + self._SETTLE_FLOOR)
        while True:
            cluster.run_until(t)
            if t >= end or self._settled(world):
                break
            t = min(end, t + self._SETTLE_SLICE)
        violations = self._oracles(world)
        if violations:
            self._record_violation(world, violations)

    def _settled(self, world) -> bool:
        """Converged enough to judge early (sound: only *skips* idle time).

        True when every live node is operational on one ring containing all
        live nodes and the delivery logs agree as sets while covering the
        twin's — i.e. recovery finished and nothing is still in flight that
        the oracles would wait for.  Any violation (wrong order, duplicate,
        invariant breach) is already in the logs at that point; paths that
        genuinely need the full window (crashes, partitions) never satisfy
        this and settle to the end.
        """
        expected = tuple(sorted(
            node_id for node_id in world.cluster.nodes
            if node_id not in world.crashed))
        # Out-of-budget paths (crashes, partitions) legitimately lose
        # messages the twin delivered; only require twin coverage where the
        # transparency oracle will demand it anyway.
        twin = (self._twin() if self._within_budget(world) else {})
        streams = []
        for node_id in expected:
            srp = world.cluster.nodes[node_id].srp
            if srp.state is not SrpState.OPERATIONAL:
                return False
            membership = srp.membership
            if membership is None or tuple(membership.members) != expected:
                return False
            uids = set()
            for message in world.cluster.nodes[node_id].log.messages:
                uid = payload_uid(message.payload)
                if uid is not None:
                    uids.add((message.sender, uid))
            if not uids >= twin.get(node_id, frozenset()):
                return False
            streams.append(uids)
        return all(stream == streams[0] for stream in streams)

    def _oracles(self, world) -> List[OracleViolation]:
        cluster = world.cluster
        histories = [
            NodeHistory(node=node_id, incarnation=incarnation,
                        messages=list(node.log.messages))
            for node_id, incarnation, node in world.incarnations]
        violations: List[OracleViolation] = []
        violations.extend(check_agreement(histories))
        violations.extend(check_no_duplicates(histories, payload_uid))
        violations.extend(check_sender_fifo(histories, payload_uid))
        if self._within_budget(world):
            violations.extend(check_total_order(histories))
            violations.extend(check_transparency(
                self._delivered_map(world), self._twin()))
        try:
            cluster.assert_evs_consistency()
        except AssertionError as exc:
            violations.append(OracleViolation("evs-ledger", str(exc)))
        checker = getattr(cluster, "checker", None)
        if checker is not None:
            violations.extend(
                OracleViolation("invariants", str(violation))
                for violation in checker.violations)
        return violations

    # ----- counterexample export -----

    def _record_violation(self, world,
                          violations: List[OracleViolation]) -> None:
        index = len(self.report.violations) + 1
        deviations = [d for d in world.decisions if d[0] != "fire"]
        record = ExploreViolation(
            index=index, oracles=violations,
            decisions=list(world.decisions), depth=len(deviations))
        if self.o.export_dir:
            self._export(world, record)
        self.report.violations.append(record)
        if len(self.report.violations) >= self.o.max_violations:
            raise _StopSearch

    def _export(self, world, record: ExploreViolation) -> None:
        os.makedirs(self.o.export_dir, exist_ok=True)
        self._export_count += 1
        stem = (f"explore_{self.o.style.value}_s{self.o.seed}"
                f"_{self._export_count:02d}")
        trace_path = os.path.join(self.o.export_dir, f"{stem}.trace.json")
        with open(trace_path, "w", encoding="utf-8") as handle:
            json.dump({
                "options": self.o.to_dict(),
                "decisions": [list(d) for d in record.decisions],
                "oracles": [str(v) for v in record.oracles],
            }, handle, indent=2, sort_keys=True)
        record.trace_path = trace_path
        scenario = self._to_scenario(world, stem)
        if scenario is None:
            return
        scenario_path = os.path.join(self.o.export_dir, f"{stem}.json")
        save_scenario(scenario, scenario_path)
        record.scenario_path = scenario_path
        try:
            result = run_scenario(scenario)
            record.replay_verified = bool(result.violations)
        except Exception as exc:  # pragma: no cover - defensive
            record.replay_verified = False
            record.oracles.append(OracleViolation(
                "replay-error", f"scenario replay raised: {exc!r}"))

    def _to_scenario(self, world, name: str) -> Optional[Scenario]:
        """Render this path as a campaign scenario, when expressible.

        Frame drops translate exactly (the serial addresses the same frame
        under the canonical replay).  Node/network faults are placed at the
        midpoint between the decision's clock time and the next event, which
        reproduces the ordering unless the path also deviated from the
        canonical schedule — those paths keep only the decision trace.
        """
        events: List[TimelineEvent] = []
        for decision in world.decisions:
            kind = decision[0]
            if kind == "fire":
                continue
            if kind == "reorder":
                # Re-ordering deviations have no DSL equivalent; the DSL
                # replay always runs the canonical (insertion-order)
                # schedule, so this path keeps only its decision trace.
                return None
            if kind == "drop":
                _, _counter, _t, network, src, serial, _pkind = decision
                events.append(TimelineEvent(at=0.0, kind="drop_frame", params={
                    "network": network, "src": src, "serial": serial}))
                continue
            if kind in ("crash", "restart"):
                at = self._midpoint(decision[2], decision[3])
                if at is None:
                    return None
                events.append(TimelineEvent(
                    at=at, kind=kind, params={"node": decision[1]}))
                continue
            if kind == "partition":
                at = self._midpoint(decision[2], decision[3])
                if at is None:
                    return None
                events.append(TimelineEvent(at=at, kind="partition_all", params={
                    "groups": [list(g) for g in decision[1]]}))
                continue
            if kind == "heal":
                at = self._midpoint(decision[1], decision[2])
                if at is None:
                    return None
                events.append(TimelineEvent(at=at, kind="heal_all", params={}))
        workload: Dict[int, int] = {}
        for sender, _uid in self._workload():
            workload[sender] = workload.get(sender, 0) + 1
        bursts = [TimelineEvent(at=0.0, kind="burst", params={
            "node": sender, "count": count,
            "size": self.o.msg_size, "gap": 0.0})
            for sender, count in sorted(workload.items())]
        return Scenario(
            name=name, style=self.o.style, seed=self.o.seed,
            num_nodes=self.o.nodes, num_networks=self.o.networks,
            duration=self.o.horizon, settle=self.o.settle,
            smr=False, invariants="observe",
            events=tuple(events + bursts),
            notes="exported by repro.check explore; replays the explored "
                  "fault path under the canonical schedule")

    @staticmethod
    def _midpoint(now: float, t_next: float) -> Optional[float]:
        if t_next <= now:
            return None  # cannot sequence between same-time events via DSL
        return (now + t_next) / 2.0


def explore(options: ExploreOptions) -> ExploreReport:
    """Run one exploration and return its report."""
    return Explorer(options).run()


# ----- decision-trace replay -----

def replay_trace(path: str) -> Tuple[ExploreOptions, List[OracleViolation]]:
    """Re-execute an exported ``*.trace.json`` decision-for-decision.

    Rebuilds the root world from the recorded options and replays the
    branch-point decisions against the identical deterministic scheduler;
    returns the oracle violations observed at the leaf (empty when the
    trace no longer reproduces, e.g. after a protocol fix).
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    options = ExploreOptions.from_dict(data["options"])
    decisions = [tuple(d) for d in data["decisions"]]
    explorer = Explorer(options)
    world = explorer._root()
    scheduler = world.cluster.scheduler
    pending = list(decisions)
    while True:
        ready = scheduler.ready_entries()
        if not ready or ready[0][_WHEN] > options.horizon:
            break
        infos = [explorer._classify(world, entry) for entry in ready]
        droppable = [info for info in infos if info.drop is not None]
        actions = explorer._fault_actions(world)
        independent = explorer._pairwise_independent(infos)
        if not droppable and not actions:
            if len(ready) == 1 or (options.por and independent):
                fire = ready if options.por else ready[:1]
                for entry in fire:
                    scheduler.fire_entry(entry)
                continue
        if not pending:
            # Trace exhausted at a branch point: continue canonically.
            scheduler.fire_entry(ready[0])
            continue
        decision = pending.pop(0)
        now = scheduler.clock._now
        t_next = ready[0][_WHEN]
        if decision[0] in ("fire", "reorder"):
            entry = explorer._entry_by_counter(scheduler, decision[1])
            world.decisions.append(decision)
            scheduler.fire_entry(entry)
        elif decision[0] == "drop":
            entry = explorer._entry_by_counter(scheduler, decision[1])
            world.decisions.append(decision)
            scheduler.discard_entry(entry)
            world.budget -= 1
        else:
            # Built per-kind: partition's payload is a group list while
            # crash/restart carry a bare node id, so a single eagerly
            # evaluated lookup table would choke on the other shapes.
            if decision[0] == "partition":
                action = ("partition",
                          tuple(tuple(g) for g in decision[1]))
            elif decision[0] == "heal":
                action = ("heal",)
            else:
                action = (decision[0], decision[1])
            # Reuse the DFS application path but drop its decision record
            # (the trace already carries the original).
            explorer._apply_deviation(world, ("action", action), now, t_next)
            world.decisions.pop()
            world.decisions.append(decision)
    world.cluster.run_until(options.horizon + options.settle)
    return options, explorer._oracles(world)


# ----- injectable protocol mutations (checker self-test) -----

def _eager_try_deliver(self):
    """The canonical delivery-order bug: deliver in arrival order,
    permanently skipping sequence gaps instead of waiting for
    retransmission (what the ordered-delivery machinery exists to
    prevent).  Mirrors the campaign corpus' injected-bug fixture."""
    while self._delivered_seq < self.recv_buffer.high_seq:
        seq = self._delivered_seq + 1
        packet = self.recv_buffer.get(seq)
        self._delivered_seq = seq
        if packet is not None:
            self._deliver_packet_chunks(
                packet, self._reassembler,
                safe=seq <= self._stable_seq,
                config_id=self.ring_id)


MUTATIONS = {
    "eager-delivery": ("_try_deliver", _eager_try_deliver),
}


@contextmanager
def apply_mutation(name: Optional[str]):
    """Temporarily install a known protocol bug (``None`` is a no-op).

    Used to prove the explorer has teeth: with a mutation installed the
    search must find and export a violating path.
    """
    if name is None:
        yield
        return
    try:
        attr, replacement = MUTATIONS[name]
    except KeyError:
        raise ConfigError(
            f"unknown mutation {name!r}; have {sorted(MUTATIONS)}")
    from ..srp.engine import TotemSrp
    original = getattr(TotemSrp, attr)
    setattr(TotemSrp, attr, replacement)
    try:
        yield
    finally:
        setattr(TotemSrp, attr, original)
