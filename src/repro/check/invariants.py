"""The online protocol-invariant checker.

The RRP/SRP stack exposes small ``probe`` hooks at its event points (token
receipt, token pass-up, timer expiry, retransmission request, fault mark).
This module implements the other side of those hooks: a per-node
:class:`NodeProbe` plus a cluster-level :class:`InvariantChecker` that
validate, *while a simulation runs*, the properties the paper's correctness
argument rests on (§5 requirements A1-A6, §6 requirements P1-P5) and a few
engineering invariants of this implementation (timer lifecycles, counter
accounting).

The checker is deliberately white-box — it reads private engine state
(``_buffered_token``, ``_delivered_current``) because that is exactly the
state the invariants constrain — and deliberately *sound*: every rule below
is argued to never fire on a correct run, including under frame loss,
bursts, partitions and severed paths.  See docs/INVARIANTS.md for the rule
catalogue and the soundness arguments.

Modes:

* ``observe`` — violations are recorded on the checker (and traced as
  ``invariant/<rule>`` events) but execution continues;
* ``strict`` — the first violation raises
  :class:`~repro.errors.InvariantViolationError` out of the simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.active import ActiveReplication
from ..core.active_passive import ActivePassiveReplication
from ..core.base import SingleNetwork
from ..core.passive import PassiveReplication
from ..errors import InvariantViolationError
from ..types import NodeId, RingId, SeqNum, TIMEOUT_NETWORK
from ..wire.packets import BatchPacket, DataPacket, Token

#: Rule catalogue: id -> (paper requirement(s), one-line statement).
#: docs/INVARIANTS.md expands each entry with its soundness argument.
INVARIANTS: Dict[str, Tuple[str, str]] = {
    "token-once": (
        "A1 / §2",
        "the SRP accepts at most one token per (ring, stamp), with "
        "strictly increasing stamps within a ring"),
    "merge-once": (
        "A1-A3",
        "the replication engine passes each merged token up at most once "
        "per (ring, stamp), with strictly increasing stamps within a ring"),
    "rtr-inflight": (
        "A2 / P1",
        "a node never requests retransmission of a message that is in "
        "flight to it on a network it considers operational (checked for "
        "tokens delivered by merge, not by timer expiry)"),
    "last-network": (
        "§3",
        "the last operational network is never marked faulty"),
    "timer-after-stop": (
        "lifecycle",
        "no engine timer callback runs after the engine was stopped"),
    "network-index": (
        "lifecycle",
        "every network index reaching the engines/SRP is a real network "
        "(or the TIMEOUT_NETWORK sentinel where a timer path allows it)"),
    "token-ledger": (
        "accounting",
        "the per-style token counters balance: every token received is "
        "delivered, buffered, superseded or dropped — exactly once"),
}


class CheckMode(enum.Enum):
    """How the checker reacts to a violation."""

    OFF = "off"
    OBSERVE = "observe"
    STRICT = "strict"


@dataclass(frozen=True)
class InvariantViolation:
    """One detected protocol-invariant violation."""

    time: float
    node: NodeId
    invariant: str
    detail: str

    def __str__(self) -> str:
        requirement = INVARIANTS.get(self.invariant, ("?", ""))[0]
        return (f"[t={self.time:.6f}] node {self.node}: "
                f"{self.invariant} ({requirement}) — {self.detail}")


class NodeProbe:
    """Observes one node's engine + SRP + fault state for the checker.

    Installed by :meth:`InvariantChecker.attach_node` as the ``probe``
    attribute of the node's replication engine, SRP engine and
    :class:`~repro.core.reports.NetworkFaultState`.  Probes outlive node
    incarnations: a restarted node gets a fresh probe while the abandoned
    incarnation keeps its old one, so a timer leaking past ``stop()`` is
    still caught.
    """

    def __init__(self, checker: "InvariantChecker", node) -> None:
        self._checker = checker
        self.node_id: NodeId = node.node_id
        self.rrp = node.rrp
        self.srp = node.srp
        self._num_networks: int = node.rrp.config.num_networks
        # Engine-level accounting the stats counters do not carry.
        self._receipts = 0       # tokens handed to the engine by the stack
        self._engine_ups = 0     # engine_token_up calls (merge/assembly done)
        # SRP-level tracking.
        self._srp_ups = 0        # srp.on_token invocations
        self._token_via: int = TIMEOUT_NETWORK  # network of token in process
        self._accepted: Dict[RingId, Tuple[int, int]] = {}
        self._merged_up: Dict[RingId, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------

    def engine_recv_token(self, token: Token, network: int) -> None:
        """A token packet reached the engine from the network stack."""
        self._check_network(network, allow_timeout=False, where="recv_token")
        # Validate the *pre-receipt* ledger: the previous token has been
        # fully classified by now, so the counters must balance.
        self.validate_ledger()
        self._receipts += 1

    def engine_token_up(self, token: Token, network: int) -> None:
        """The engine completed merge/assembly of a token (A1-A3)."""
        self._check_network(network, allow_timeout=True, where="token_up")
        self._engine_ups += 1
        previous = self._merged_up.get(token.ring_id)
        if previous is not None and token.stamp <= previous:
            self._violation(
                "merge-once",
                f"engine passed up token stamp {token.stamp} on ring "
                f"{token.ring_id} after already passing up {previous}")
        else:
            self._merged_up[token.ring_id] = token.stamp

    def engine_timer_fired(self, name: str, stopped: bool) -> None:
        """An engine timer callback ran; ``stopped`` is the engine state."""
        if stopped:
            self._violation(
                "timer-after-stop",
                f"engine timer '{name}' fired after stop() — "
                f"stop() must cancel every pending timer")

    # ------------------------------------------------------------------
    # SRP hooks
    # ------------------------------------------------------------------

    def srp_token_up(self, token: Token, network: int) -> None:
        """srp.on_token was invoked (by the engine, or self-injected)."""
        self._check_network(network, allow_timeout=True, where="srp.on_token")
        self._srp_ups += 1
        self._token_via = network
        # Cross-layer ledger: every on_token comes from the engine's
        # delivery path — which increments tokens_delivered first — except
        # the single self-injected boot token of a ring representative.
        delivered = self.rrp.stats.tokens_delivered
        if not delivered <= self._srp_ups <= delivered + 1:
            self._violation(
                "token-ledger",
                f"srp.on_token ran {self._srp_ups} times but the engine "
                f"delivered {delivered} tokens (at most one self-injected "
                f"boot token may bypass the engine)")

    def srp_token_accepted(self, token: Token, network: int) -> None:
        """The SRP accepted a token (passed the duplicate-stamp filter)."""
        self._token_via = network
        previous = self._accepted.get(token.ring_id)
        if previous is not None and token.stamp <= previous:
            self._violation(
                "token-once",
                f"SRP accepted token stamp {token.stamp} on ring "
                f"{token.ring_id} after already accepting {previous}")
        else:
            self._accepted[token.ring_id] = token.stamp

    def retransmission_requested(self, ring_id: RingId, seq: SeqNum) -> None:
        """The SRP appended ``seq`` to the token's retransmission list."""
        if self._token_via == TIMEOUT_NETWORK:
            # The engine released this token on a timer expiry: slower
            # copies may legitimately still be in flight (A4/P3 progress
            # deliberately beats A2/P1 here).
            return
        network = self._checker.data_in_flight(
            self.node_id, ring_id, seq, faults=self.rrp.faults)
        if network is not None:
            self._violation(
                "rtr-inflight",
                f"requested retransmission of ({ring_id}, seq {seq}) while "
                f"a copy is in flight on operational network {network} "
                f"(token arrived via network {self._token_via})")

    # ------------------------------------------------------------------
    # fault-state hook
    # ------------------------------------------------------------------

    def network_marked_faulty(self, network: int, operational_left: int) -> None:
        """A network was marked faulty; ``operational_left`` remain."""
        if operational_left < 1:
            self._violation(
                "last-network",
                f"network {network} was marked faulty leaving "
                f"{operational_left} operational networks")

    # ------------------------------------------------------------------
    # ledgers
    # ------------------------------------------------------------------

    def validate_ledger(self) -> None:
        """Check the style-specific token accounting (see INVARIANTS.md).

        Valid between engine events (every received token fully classified);
        called before each token receipt and from
        :meth:`InvariantChecker.check_all`.
        """
        stats = self.rrp.stats
        direct = stats.tokens_delivered - stats.tokens_buffer_released
        if isinstance(self.rrp, ActiveReplication):
            pending = int(self.rrp._last_token is not None
                          and not self.rrp._delivered_current)
            if self._engine_ups != stats.tokens_delivered:
                self._ledger_violation(
                    f"active: {self._engine_ups} merges passed up but "
                    f"{stats.tokens_delivered} tokens delivered")
            if stats.tokens_merged < stats.tokens_delivered + pending:
                self._ledger_violation(
                    f"active: merged {stats.tokens_merged} < delivered "
                    f"{stats.tokens_delivered} + pending {pending}")
        elif isinstance(self.rrp, PassiveReplication):
            buffered_now = int(self.rrp._buffered_token is not None)
            if self._receipts != (direct + stats.tokens_buffered
                                  + stats.stale_tokens_dropped):
                self._ledger_violation(
                    f"passive: {self._receipts} receipts != direct {direct} "
                    f"+ buffered {stats.tokens_buffered} + stale "
                    f"{stats.stale_tokens_dropped}")
            if stats.tokens_buffered != (stats.tokens_buffer_released
                                         + stats.tokens_superseded
                                         + buffered_now):
                self._ledger_violation(
                    f"passive: buffered {stats.tokens_buffered} != released "
                    f"{stats.tokens_buffer_released} + superseded "
                    f"{stats.tokens_superseded} + held {buffered_now}")
        elif isinstance(self.rrp, ActivePassiveReplication):
            pending = int(self.rrp._last_token is not None
                          and not self.rrp._delivered_current)
            buffered_now = int(self.rrp._buffered_token is not None)
            if self._engine_ups != direct + stats.tokens_buffered:
                self._ledger_violation(
                    f"active-passive: {self._engine_ups} assemblies != "
                    f"direct {direct} + buffered {stats.tokens_buffered}")
            if stats.tokens_buffered != (stats.tokens_buffer_released
                                         + stats.tokens_superseded
                                         + buffered_now):
                self._ledger_violation(
                    f"active-passive: buffered {stats.tokens_buffered} != "
                    f"released {stats.tokens_buffer_released} + superseded "
                    f"{stats.tokens_superseded} + held {buffered_now}")
            if stats.tokens_merged < self._engine_ups + pending:
                self._ledger_violation(
                    f"active-passive: merged {stats.tokens_merged} < "
                    f"assembled {self._engine_ups} + pending {pending}")
        elif isinstance(self.rrp, SingleNetwork):
            if self._receipts != stats.tokens_delivered:
                self._ledger_violation(
                    f"single: {self._receipts} receipts != delivered "
                    f"{stats.tokens_delivered}")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _check_network(self, network: int, allow_timeout: bool,
                       where: str) -> None:
        if 0 <= network < self._num_networks:
            return
        if allow_timeout and network == TIMEOUT_NETWORK:
            return
        self._violation(
            "network-index",
            f"{where} saw network index {network} "
            f"(cluster has {self._num_networks} networks)")

    def _ledger_violation(self, detail: str) -> None:
        self._violation("token-ledger", detail)

    def _violation(self, invariant: str, detail: str) -> None:
        self._checker.record(self.node_id, invariant, detail)


class InvariantChecker:
    """Cluster-level checker: owns the probes and the in-flight frame map."""

    #: Prune the per-destination in-flight lists once they exceed this many
    #: entries (queries prune too; this bounds memory on rtr-free runs).
    _PRUNE_THRESHOLD = 512

    def __init__(self, mode: CheckMode = CheckMode.OBSERVE,
                 now_fn=None, tracer=None) -> None:
        self.mode = mode if isinstance(mode, CheckMode) else CheckMode(mode)
        self._now = now_fn or (lambda: 0.0)
        self._tracer = tracer
        self.violations: List[InvariantViolation] = []
        self.probes: List[NodeProbe] = []
        # dst -> [(arrival_time, network, ring_id, seq)] for DataPackets
        # scheduled for delivery but not yet arrived.
        self._in_flight: Dict[NodeId, List[Tuple[float, int, RingId, SeqNum]]] = {}

    # ----- wiring -----

    def attach_node(self, node) -> NodeProbe:
        """Install a fresh probe on ``node``'s engine, SRP and fault state."""
        probe = NodeProbe(self, node)
        node.rrp.probe = probe
        node.srp.probe = probe
        node.rrp.faults.probe = probe
        self.probes.append(probe)
        return probe

    def attach_lan(self, lan) -> None:
        """Observe ``lan``'s scheduled deliveries (for rtr-inflight)."""
        lan.observer = self._on_frame_scheduled

    def _on_frame_scheduled(self, network: int, src: NodeId, dst: NodeId,
                            packet, arrival: float) -> None:
        if isinstance(packet, BatchPacket):
            # Every packet carried by the frame train is in flight: a
            # retransmission request for any of them while the batch is on
            # an operational wire is the same A2/P1 violation.
            entries = self._in_flight.setdefault(dst, [])
            ring_id = packet.ring_id
            for sub in packet.packets:
                entries.append((arrival, network, ring_id, sub.seq))
        elif isinstance(packet, DataPacket):
            entries = self._in_flight.setdefault(dst, [])
            entries.append((arrival, network, packet.ring_id, packet.seq))
        else:
            return
        if len(entries) > self._PRUNE_THRESHOLD:
            now = self._now()
            self._in_flight[dst] = [e for e in entries if e[0] > now]

    # ----- queries -----

    def data_in_flight(self, dst: NodeId, ring_id: RingId, seq: SeqNum,
                       faults=None) -> Optional[int]:
        """Network carrying an undelivered copy of (ring, seq) to ``dst``.

        Returns None when no copy is in flight.  ``faults`` (the requester's
        :class:`~repro.core.reports.NetworkFaultState`) excludes networks
        the requester has marked faulty — the paper only forbids requesting
        a message in transit on an *operational* network.
        """
        entries = self._in_flight.get(dst)
        if not entries:
            return None
        now = self._now()
        live = [e for e in entries if e[0] > now]
        self._in_flight[dst] = live
        for _, network, entry_ring, entry_seq in live:
            if entry_ring != ring_id or entry_seq != seq:
                continue
            if faults is not None and faults.is_faulty(network):
                continue
            return network
        return None

    # ----- recording -----

    def record(self, node: NodeId, invariant: str, detail: str) -> None:
        """Record a violation; raise when in strict mode."""
        violation = InvariantViolation(
            time=self._now(), node=node, invariant=invariant, detail=detail)
        self.violations.append(violation)
        if self._tracer is not None:
            self._tracer.emit(node, "invariant", invariant, detail)
        if self.mode is CheckMode.STRICT:
            raise InvariantViolationError(str(violation))

    # ----- end-of-run checks -----

    def check_all(self) -> List[InvariantViolation]:
        """Run the final ledger validation over every probe (including the
        probes of abandoned incarnations) and return all violations."""
        for probe in self.probes:
            probe.validate_ledger()
        return self.violations

    def assert_clean(self) -> None:
        """Raise (in any mode) if any violation has been recorded."""
        self.check_all()
        if self.violations:
            lines = "\n".join(str(v) for v in self.violations)
            raise InvariantViolationError(
                f"{len(self.violations)} invariant violation(s):\n{lines}")

    def report(self) -> str:
        """Human-readable summary of recorded violations."""
        if not self.violations:
            return "no invariant violations"
        return "\n".join(str(v) for v in self.violations)
