"""Dependency-free SVG rendering of reproduced figures.

The paper's figures are log-log line plots.  ``figure_to_svg`` renders a
:class:`~repro.bench.figures.FigureResult` as a standalone SVG file so the
reproduction can be compared to the paper's plots side by side — without
pulling in a plotting stack.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from .figures import FigureResult

#: Distinguishable, print-safe series colours (matched to line dashes too).
_PALETTE = ("#1f6f8b", "#c0392b", "#27ae60", "#8e44ad", "#d35400")
_DASHES = ("", "6,3", "2,3", "8,3,2,3", "4,2")

_WIDTH, _HEIGHT = 640, 440
_MARGIN_LEFT, _MARGIN_RIGHT = 84, 24
_MARGIN_TOP, _MARGIN_BOTTOM = 48, 64


def _log_ticks(low: float, high: float) -> List[float]:
    """Decade ticks covering [low, high]."""
    ticks = []
    exponent = math.floor(math.log10(low))
    while 10 ** exponent <= high * 1.0001:
        tick = 10.0 ** exponent
        if tick >= low * 0.9999:
            ticks.append(tick)
        exponent += 1
    return ticks or [low, high]


def _fmt(value: float) -> str:
    if value >= 1000:
        return f"{value / 1000:g}k"
    return f"{value:g}"


def figure_to_svg(figure: FigureResult) -> str:
    """Render a figure as a standalone SVG document (log-log axes)."""
    series = figure.series()
    points = [(x, y) for pts in series.values() for x, y in pts
              if x > 0 and y > 0]
    if not points:
        return ("<svg xmlns='http://www.w3.org/2000/svg' width='200' "
                "height='40'><text x='8' y='24'>no data</text></svg>")
    x_min = min(p[0] for p in points)
    x_max = max(p[0] for p in points)
    y_min = min(p[1] for p in points)
    y_max = max(p[1] for p in points)
    if x_min == x_max:
        x_max *= 10
    if y_min == y_max:
        y_max *= 10

    plot_w = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM

    def sx(x: float) -> float:
        frac = (math.log10(x) - math.log10(x_min)) / (
            math.log10(x_max) - math.log10(x_min))
        return _MARGIN_LEFT + frac * plot_w

    def sy(y: float) -> float:
        frac = (math.log10(y) - math.log10(y_min)) / (
            math.log10(y_max) - math.log10(y_min))
        return _MARGIN_TOP + (1.0 - frac) * plot_h

    parts: List[str] = []
    parts.append(
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{_WIDTH}' "
        f"height='{_HEIGHT}' font-family='sans-serif' font-size='12'>")
    parts.append(
        f"<rect x='0' y='0' width='{_WIDTH}' height='{_HEIGHT}' "
        f"fill='white'/>")
    parts.append(
        f"<text x='{_WIDTH / 2:.0f}' y='22' text-anchor='middle' "
        f"font-size='15'>{figure.title}</text>")

    # Grid + ticks.
    for tick in _log_ticks(x_min, x_max):
        x = sx(tick)
        parts.append(
            f"<line x1='{x:.1f}' y1='{_MARGIN_TOP}' x2='{x:.1f}' "
            f"y2='{_MARGIN_TOP + plot_h}' stroke='#dddddd'/>")
        parts.append(
            f"<text x='{x:.1f}' y='{_MARGIN_TOP + plot_h + 18}' "
            f"text-anchor='middle'>{_fmt(tick)}</text>")
    for tick in _log_ticks(y_min, y_max):
        y = sy(tick)
        parts.append(
            f"<line x1='{_MARGIN_LEFT}' y1='{y:.1f}' "
            f"x2='{_MARGIN_LEFT + plot_w}' y2='{y:.1f}' stroke='#dddddd'/>")
        parts.append(
            f"<text x='{_MARGIN_LEFT - 8}' y='{y + 4:.1f}' "
            f"text-anchor='end'>{_fmt(tick)}</text>")

    # Axes frame.
    parts.append(
        f"<rect x='{_MARGIN_LEFT}' y='{_MARGIN_TOP}' width='{plot_w}' "
        f"height='{plot_h}' fill='none' stroke='#333333'/>")
    parts.append(
        f"<text x='{_MARGIN_LEFT + plot_w / 2:.0f}' y='{_HEIGHT - 18}' "
        f"text-anchor='middle'>message length (bytes)</text>")
    parts.append(
        f"<text x='20' y='{_MARGIN_TOP + plot_h / 2:.0f}' "
        f"text-anchor='middle' "
        f"transform='rotate(-90 20 {_MARGIN_TOP + plot_h / 2:.0f})'>"
        f"{figure.unit}</text>")

    # Series.
    for idx, (name, pts) in enumerate(sorted(series.items())):
        color = _PALETTE[idx % len(_PALETTE)]
        dash = _DASHES[idx % len(_DASHES)]
        dash_attr = f" stroke-dasharray='{dash}'" if dash else ""
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{sx(x):.1f},{sy(y):.1f}"
            for i, (x, y) in enumerate(pts))
        parts.append(
            f"<path d='{path}' fill='none' stroke='{color}' "
            f"stroke-width='2'{dash_attr}/>")
        for x, y in pts:
            parts.append(
                f"<circle cx='{sx(x):.1f}' cy='{sy(y):.1f}' r='3' "
                f"fill='{color}'/>")
        legend_y = _MARGIN_TOP + 16 + 18 * idx
        legend_x = _MARGIN_LEFT + plot_w - 150
        parts.append(
            f"<line x1='{legend_x}' y1='{legend_y - 4}' "
            f"x2='{legend_x + 26}' y2='{legend_y - 4}' stroke='{color}' "
            f"stroke-width='2'{dash_attr}/>")
        parts.append(
            f"<text x='{legend_x + 32}' y='{legend_y}'>{name}</text>")

    parts.append("</svg>")
    return "\n".join(parts)


def _linear_ticks(low: float, high: float, count: int = 6) -> List[float]:
    """Round-ish tick positions covering [low, high] on a linear axis."""
    if high <= low:
        return [low]
    span = high - low
    raw = span / max(1, count - 1)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    for step in (1.0, 2.0, 2.5, 5.0, 10.0):
        if raw <= step * magnitude:
            step *= magnitude
            break
    else:  # pragma: no cover - the 10.0 arm always matches
        step = 10.0 * magnitude
    first = math.ceil(low / step) * step
    ticks = []
    tick = first
    while tick <= high * 1.0001:
        ticks.append(round(tick, 10))
        tick += step
    return ticks or [low, high]


def timeseries_to_svg(series: Dict[str, Sequence[Tuple[float, float]]], *,
                      title: str, y_label: str, x_label: str = "virtual time (s)",
                      events: Sequence[Tuple[float, str, str]] = (),
                      y_min: float = None, y_max: float = None,
                      width: int = 760, height: int = 300) -> str:
    """Render virtual-time series as a standalone SVG (linear axes).

    ``series`` maps a legend name to ``(t, value)`` points; ``events`` is a
    sequence of ``(time, color, label)`` vertical markers (fault injections,
    detections, membership changes) drawn over the plot.  Used by the
    ``repro.obs`` run reports; kept here beside :func:`figure_to_svg` so all
    SVG plumbing lives in one dependency-free module.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return ("<svg xmlns='http://www.w3.org/2000/svg' width='200' "
                "height='40'><text x='8' y='24'>no data</text></svg>")
    x_lo = min(p[0] for p in points)
    x_hi = max(p[0] for p in points)
    data_y_lo = min(p[1] for p in points)
    data_y_hi = max(p[1] for p in points)
    y_lo = data_y_lo if y_min is None else y_min
    y_hi = data_y_hi if y_max is None else y_max
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    margin_left, margin_right = 76, 16
    margin_top, margin_bottom = 40, 52
    plot_w = width - margin_left - margin_right
    plot_h = height - margin_top - margin_bottom

    def sx(x: float) -> float:
        return margin_left + (x - x_lo) / (x_hi - x_lo) * plot_w

    def sy(y: float) -> float:
        return margin_top + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h

    parts: List[str] = []
    parts.append(
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' font-family='sans-serif' font-size='11'>")
    parts.append(f"<rect x='0' y='0' width='{width}' height='{height}' "
                 f"fill='white'/>")
    parts.append(f"<text x='{width / 2:.0f}' y='20' text-anchor='middle' "
                 f"font-size='14'>{title}</text>")

    for tick in _linear_ticks(x_lo, x_hi):
        x = sx(tick)
        parts.append(f"<line x1='{x:.1f}' y1='{margin_top}' x2='{x:.1f}' "
                     f"y2='{margin_top + plot_h}' stroke='#eeeeee'/>")
        parts.append(f"<text x='{x:.1f}' y='{margin_top + plot_h + 16}' "
                     f"text-anchor='middle'>{_fmt(tick)}</text>")
    for tick in _linear_ticks(y_lo, y_hi, count=5):
        y = sy(tick)
        parts.append(f"<line x1='{margin_left}' y1='{y:.1f}' "
                     f"x2='{margin_left + plot_w}' y2='{y:.1f}' "
                     f"stroke='#eeeeee'/>")
        parts.append(f"<text x='{margin_left - 6}' y='{y + 4:.1f}' "
                     f"text-anchor='end'>{_fmt(tick)}</text>")

    # Event markers under the series so lines stay readable.
    for time, color, label in events:
        if not x_lo <= time <= x_hi:
            continue
        x = sx(time)
        parts.append(f"<line x1='{x:.1f}' y1='{margin_top}' x2='{x:.1f}' "
                     f"y2='{margin_top + plot_h}' stroke='{color}' "
                     f"stroke-dasharray='3,3'/>")
        parts.append(f"<text x='{x + 3:.1f}' y='{margin_top + 10}' "
                     f"fill='{color}' font-size='10'>{label}</text>")

    parts.append(f"<rect x='{margin_left}' y='{margin_top}' "
                 f"width='{plot_w}' height='{plot_h}' fill='none' "
                 f"stroke='#333333'/>")
    parts.append(f"<text x='{margin_left + plot_w / 2:.0f}' "
                 f"y='{height - 10}' text-anchor='middle'>{x_label}</text>")
    parts.append(f"<text x='16' y='{margin_top + plot_h / 2:.0f}' "
                 f"text-anchor='middle' transform='rotate(-90 16 "
                 f"{margin_top + plot_h / 2:.0f})'>{y_label}</text>")

    for idx, (name, pts) in enumerate(sorted(series.items())):
        color = _PALETTE[idx % len(_PALETTE)]
        dash = _DASHES[idx % len(_DASHES)]
        dash_attr = f" stroke-dasharray='{dash}'" if dash else ""
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{sx(x):.1f},{sy(y):.1f}"
            for i, (x, y) in enumerate(pts))
        parts.append(f"<path d='{path}' fill='none' stroke='{color}' "
                     f"stroke-width='1.5'{dash_attr}/>")
        legend_y = margin_top + 12 + 14 * idx
        legend_x = margin_left + plot_w - 130
        parts.append(f"<line x1='{legend_x}' y1='{legend_y - 4}' "
                     f"x2='{legend_x + 20}' y2='{legend_y - 4}' "
                     f"stroke='{color}' stroke-width='2'{dash_attr}/>")
        parts.append(f"<text x='{legend_x + 26}' y='{legend_y}'>{name}</text>")

    parts.append("</svg>")
    return "\n".join(parts)


def write_figure_svg(figure: FigureResult, path: str) -> str:
    """Write the SVG for ``figure`` to ``path`` and return the path."""
    document = figure_to_svg(figure)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return path
