"""Delivery-latency measurement.

The paper's evaluation is throughput-only; latency is nevertheless where
the replication styles differ most visibly under loss (§4: active masks
loss "without any message retransmission delay", passive must wait for
retransmission).  This module measures one-way agreed-delivery latency —
submit at one node until delivered at another — under configurable load
and loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..api.cluster import SimCluster
from ..config import LanConfig
from ..net.faults import FaultPlan
from ..types import ReplicationStyle
from .runner import build_config


@dataclass(frozen=True)
class LatencyResult:
    """Latency sample statistics (seconds)."""

    style: ReplicationStyle
    samples: int
    mean: float
    p50: float
    p99: float
    worst: float

    def row(self) -> str:
        return (f"{self.style.value:15s} mean {self.mean * 1e3:7.3f} ms  "
                f"p50 {self.p50 * 1e3:7.3f} ms  p99 {self.p99 * 1e3:7.3f} ms  "
                f"worst {self.worst * 1e3:7.3f} ms")


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[index]


def measure_delivery_latency(style: ReplicationStyle,
                             num_nodes: int = 4,
                             message_size: int = 512,
                             samples: int = 200,
                             loss_rate: float = 0.0,
                             gap: float = 0.002,
                             seed: int = 1,
                             lan: Optional[LanConfig] = None) -> LatencyResult:
    """One-way latency: node 1 submits, measured at node ``num_nodes``.

    ``gap`` spaces the probes so the ring stays lightly loaded (latency
    under saturation is a flow-control question, not a protocol one).
    """
    config = build_config(style, num_nodes, lan=lan, seed=seed)
    cluster = SimCluster(config)
    if loss_rate > 0.0:
        plan = FaultPlan()
        for network in range(len(cluster.lans)):
            plan.set_loss(at=0.0, network=network, rate=loss_rate)
        cluster.apply_fault_plan(plan)
    cluster.start()
    cluster.run_for(0.05)  # let the ring spin up

    sink = cluster.nodes[num_nodes]
    latencies: List[float] = []
    payload = b"\x07" * message_size
    for _ in range(samples):
        target = len(sink.delivered) + 1
        sent_at = cluster.now
        cluster.nodes[1].submit(payload)
        cluster.run_until_condition(
            lambda: len(sink.delivered) >= target, timeout=5.0, step=0.0002)
        latencies.append(cluster.now - sent_at)
        cluster.run_for(gap)

    latencies.sort()
    return LatencyResult(
        style=style,
        samples=len(latencies),
        mean=sum(latencies) / len(latencies),
        p50=_percentile(latencies, 0.50),
        p99=_percentile(latencies, 0.99),
        worst=latencies[-1])
