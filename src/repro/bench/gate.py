"""Benchmark-regression gate for the simulator's hot path.

``python -m repro.bench gate`` runs a small set of microworkloads derived
from the Figure 6/8 sweeps, records simulator-core throughput (wall-clock
events/s and delivered ops/s) plus deterministic virtual-time delivery
latency, writes the measurements to ``BENCH_<label>.json``, and compares
them against the most recent previous ``BENCH_*.json`` in the same
directory.  A drop of more than ``REGRESSION_THRESHOLD`` in any throughput
metric (or the same rise in virtual latency) fails the gate, so hot-path
regressions are caught in the PR that introduces them.

Wall-clock throughput is machine-dependent; the gate is a *trajectory*
check between runs on the same machine, not an absolute target.  The
virtual-latency metrics are fully deterministic and must not move at all
unless protocol behaviour changed.
"""

from __future__ import annotations

import gc
import glob
import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from ..api.cluster import SimCluster
from ..errors import GateError
from ..types import ReplicationStyle
from .latency import measure_delivery_latency
from .runner import build_config
from .workload import SaturatingWorkload

SCHEMA_VERSION = 1
#: Relative slowdown (or latency rise) that fails the gate.
REGRESSION_THRESHOLD = 0.10

#: (name, replication style, nodes, message size).  The 700-byte active
#: point is the paper's Figure 6 throughput knee; the single-network point
#: isolates the scheduler/LAN core from replication fan-out.
GATE_WORKLOADS: Tuple[Tuple[str, ReplicationStyle, int, int], ...] = (
    ("fig6_active_4n_700B", ReplicationStyle.ACTIVE, 4, 700),
    ("fig6_none_4n_1024B", ReplicationStyle.NONE, 4, 1024),
)


def _measure_workload(style: ReplicationStyle, num_nodes: int,
                      message_size: int, duration: float,
                      warmup: float, seed: int = 42,
                      enable_batching: bool = True) -> Dict[str, Any]:
    """One saturated microworkload run; returns raw and derived metrics.

    GC is disabled across the timed region (the standard methodology of
    pytest-benchmark) so collector pauses do not add noise.
    """
    config = build_config(style, num_nodes, seed=seed,
                          enable_batching=enable_batching)
    cluster = SimCluster(config)
    cluster.start()
    workload = SaturatingWorkload(cluster, message_size)
    workload.start()
    cluster.run_for(warmup)
    reference = cluster.nodes[min(cluster.nodes)]
    events0 = cluster.scheduler.events_processed
    msgs0 = reference.srp.stats.msgs_delivered
    bytes0 = reference.srp.stats.bytes_delivered
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        cluster.run_for(duration)
        wall = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    events = cluster.scheduler.events_processed - events0
    messages = reference.srp.stats.msgs_delivered - msgs0
    payload_bytes = reference.srp.stats.bytes_delivered - bytes0
    wall = max(wall, 1e-9)
    return {
        "style": style.value,
        "num_nodes": num_nodes,
        "message_size": message_size,
        "batching": enable_batching,
        "virtual_duration": duration,
        "events": events,
        "messages": messages,
        "wall_seconds": round(wall, 6),
        "events_per_sec": round(events / wall, 1),
        "ops_per_sec": round(messages / wall, 1),
        "virtual_mbps": round(payload_bytes * 8 / duration / 1e6, 3),
    }


def run_gate_workloads(quick: bool = False,
                       label: str = "pr",
                       repeats: int = 3,
                       enable_batching: bool = True) -> Dict[str, Any]:
    """Run every gate microworkload; keep the best (lowest-wall) repeat.

    The throughput workloads run with message batching on by default —
    the gate measures the production hot path.  The latency measurement
    below always runs unbatched: it is a deterministic virtual-time
    trajectory check against historical baselines that predate batching.
    """
    duration = 0.1 if quick else 0.5
    warmup = 0.05 if quick else 0.1
    repeats = 1 if quick else max(1, repeats)
    workloads: Dict[str, Any] = {}
    for name, style, nodes, size in GATE_WORKLOADS:
        best: Optional[Dict[str, Any]] = None
        for _ in range(repeats):
            result = _measure_workload(style, nodes, size, duration, warmup,
                                       enable_batching=enable_batching)
            if best is None or result["wall_seconds"] < best["wall_seconds"]:
                best = result
        workloads[name] = best
    latency = measure_delivery_latency(
        ReplicationStyle.ACTIVE, num_nodes=4, message_size=512,
        samples=20 if quick else 100, seed=7)
    return {
        "schema": SCHEMA_VERSION,
        "label": label,
        "quick": quick,
        "workloads": workloads,
        "latency": {
            "samples": latency.samples,
            "virtual_p50_ms": round(latency.p50 * 1e3, 6),
            "virtual_p99_ms": round(latency.p99 * 1e3, 6),
        },
    }


def write_result(result: Dict[str, Any], path: str) -> None:
    """Write a result document, stamping ``recorded`` if absent.

    ``recorded`` (Unix seconds) is the document's authoritative age for
    baseline discovery: file mtimes are rewritten by every ``git
    checkout``, so :func:`find_baseline` cannot trust them.
    """
    result.setdefault("recorded", int(time.time()))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_result(path: str) -> Dict[str, Any]:
    """Read a ``BENCH_*.json`` document, validating shape and schema."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except OSError as exc:
        raise GateError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise GateError(f"malformed baseline {path}: {exc}") from exc
    if not isinstance(document, dict) or "workloads" not in document:
        raise GateError(f"baseline {path} is not a gate result document")
    if document.get("schema") != SCHEMA_VERSION:
        raise GateError(
            f"baseline {path} has schema {document.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}")
    return document


def _baseline_sort_key(path: str) -> Tuple[float, str]:
    """Ordering key for baseline discovery: ``(recorded, basename)``.

    The document's embedded ``recorded`` timestamp is authoritative; the
    file mtime is only a fallback for documents predating the field.  In
    a fresh ``git checkout`` every BENCH file shares one mtime, so
    without the embedded stamp "newest by mtime" is whatever the
    filesystem happened to write last (the BENCH_pr7 vs
    BENCH_pr7_rebase ambiguity).  The basename tiebreak makes equal
    timestamps deterministic too.
    """
    recorded: Optional[float] = None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
        value = document.get("recorded") if isinstance(document, dict) else None
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            recorded = float(value)
    except (OSError, json.JSONDecodeError):
        pass
    if recorded is None:
        recorded = os.path.getmtime(path)
    return recorded, os.path.basename(path)


def find_baseline(directory: str, output_path: str) -> Optional[str]:
    """The most recent ``BENCH_*.json`` in ``directory`` besides the output.

    Recency is the document's ``recorded`` field (see
    :func:`_baseline_sort_key`), not the file mtime.
    """
    output_abs = os.path.abspath(output_path)
    candidates = [
        path for path in glob.glob(os.path.join(directory, "BENCH_*.json"))
        if os.path.abspath(path) != output_abs
    ]
    if not candidates:
        return None
    candidates.sort(key=_baseline_sort_key)
    return candidates[-1]


def compare(current: Dict[str, Any], baseline: Dict[str, Any],
            threshold: float = REGRESSION_THRESHOLD) -> List[str]:
    """Regression messages (empty when the gate passes).

    Throughput metrics must not drop, and deterministic virtual latency
    must not rise, by more than ``threshold`` relative to the baseline.
    Workloads present in only one document are ignored (the gate is a
    trajectory check, not a schema lockstep).
    """
    regressions: List[str] = []
    base_workloads = baseline.get("workloads", {})
    for name, metrics in current.get("workloads", {}).items():
        base = base_workloads.get(name)
        if not isinstance(base, dict):
            continue
        for metric in ("events_per_sec", "ops_per_sec"):
            old = base.get(metric)
            new = metrics.get(metric)
            if not old or new is None:
                continue
            drop = (old - new) / old
            if drop > threshold:
                regressions.append(
                    f"{name}.{metric}: {old:,.0f} -> {new:,.0f} "
                    f"({drop:.1%} drop > {threshold:.0%})")
    base_latency = baseline.get("latency", {})
    cur_latency = current.get("latency", {})
    for metric in ("virtual_p50_ms", "virtual_p99_ms"):
        old = base_latency.get(metric)
        new = cur_latency.get(metric)
        if not old or new is None:
            continue
        rise = (new - old) / old
        if rise > threshold:
            regressions.append(
                f"latency.{metric}: {old:.4f} -> {new:.4f} ms "
                f"({rise:.1%} rise > {threshold:.0%})")
    return regressions


def run_gate(output: str, baseline: Optional[str] = None,
             enforce: bool = True, quick: bool = False,
             label: Optional[str] = None,
             threshold: float = REGRESSION_THRESHOLD,
             enable_batching: bool = True) -> Dict[str, Any]:
    """Measure, write ``output``, and compare against a baseline.

    ``baseline=None`` auto-discovers the newest sibling ``BENCH_*.json``;
    an explicitly named baseline that is missing or malformed raises
    :class:`~repro.errors.GateError`.  With ``enforce`` a detected
    regression also raises; without it regressions are only reported in
    the returned document (``regressions`` key).
    """
    if label is None:
        stem = os.path.splitext(os.path.basename(output))[0]
        label = stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem
    # Validate the baseline before measuring: a missing or malformed
    # baseline should fail in milliseconds, not after the benchmark runs.
    baseline_path = baseline
    if baseline_path is None:
        baseline_path = find_baseline(os.path.dirname(output) or ".", output)
    base_doc = load_result(baseline_path) if baseline_path is not None else None
    result = run_gate_workloads(quick=quick, label=label,
                                enable_batching=enable_batching)
    regressions: List[str] = []
    if base_doc is not None:
        regressions = compare(result, base_doc, threshold=threshold)
        result["baseline"] = os.path.basename(baseline_path)
    result["regressions"] = regressions
    write_result(result, output)
    if regressions and enforce:
        raise GateError(
            "benchmark gate failed:\n  " + "\n  ".join(regressions))
    return result
