"""Service-facade SLO benchmark: goodput and tail latency under overload.

``python -m repro.bench service`` drives the production facade
(:mod:`repro.service`) with the closed-loop heavy-tailed client
population of :class:`~repro.bench.workload.ClosedLoopWorkload` at
~2x the ring's measured capacity, and gates on the three properties a
load-shedding front-end exists to provide:

* **goodput** — completed ops per virtual second during the measurement
  window must stay at or above ``GOODPUT_FLOOR`` of the measured ring
  capacity even though twice that much load is offered (the shedder
  rejects the excess instead of letting the backlog destroy throughput);
* **bounded p99** — the p99 virtual latency of completed requests must
  stay under ``P99_BOUND_MS`` (the bounded admission queue caps waiting;
  unbounded queueing would push p99 toward the run length);
* **zero stalls** — ``service_ring_stalls_total`` must be exactly zero:
  the backpressure shedder keeps the facade's injection inside the SRP
  flow-control window, so no submit ever finds a full send queue.

The document also embeds the standard fig6 gate workloads so the
baseline trajectory comparison (vs ``BENCH_pr8.json``) still applies.
All SLO figures are in *virtual* time and therefore deterministic per
seed; wall-clock throughput appears only in the embedded gate section.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from ..config import TotemConfig
from ..errors import GateError
from ..multiring import MultiRingCluster, MultiRingConfig
from ..obs.metrics import MetricRegistry
from ..service import ServiceConfig, ServiceFacade
from ..types import ReplicationStyle
from .gate import (
    REGRESSION_THRESHOLD,
    compare,
    find_baseline,
    load_result,
    run_gate_workloads,
    write_result,
)
from .multiring import MULTIRING_LAN
from .workload import ClosedLoopWorkload, MultiRingSaturatingWorkload

#: Completed ops/s under 2x overload must be >= this fraction of capacity.
GOODPUT_FLOOR = 0.80
#: p99 virtual latency bound (ms) for completed requests under overload.
P99_BOUND_MS = 250.0
#: Offered load as a multiple of measured capacity.
OVERLOAD_FACTOR = 2.0
#: Cluster shape for the service run (matches the PR-8 sharded config).
SERVICE_RINGS = 4
SERVICE_NODES = 4
#: Probe/workload payload sizing: a service envelope for an 8-byte key
#: and 32-byte value is ~60 bytes on the wire; the capacity probe uses
#: the same size so capacity and goodput count comparable messages.
SERVICE_MESSAGE_SIZE = 64


def _build_cluster(seed: int) -> MultiRingCluster:
    config = MultiRingConfig(
        num_rings=SERVICE_RINGS, num_nodes=SERVICE_NODES,
        totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                          num_networks=2, enable_batching=True),
        lan=MULTIRING_LAN, seed=seed)
    return MultiRingCluster(config)


def probe_capacity(duration: float = 0.2, warmup: float = 0.1,
                   seed: int = 42) -> float:
    """Aggregate deliverable ops per virtual second at saturation.

    Saturates every engine of the same cluster shape the service run
    uses, with the same message size, and counts per-ring deliveries at
    one reference member — the ceiling the facade's token bucket is then
    set to.
    """
    cluster = _build_cluster(seed)
    cluster.start()
    workload = MultiRingSaturatingWorkload(cluster, SERVICE_MESSAGE_SIZE)
    workload.start()
    cluster.run_for(warmup)
    references = [view.representative.srp.stats
                  for view in cluster.groups.values()]
    msgs0 = sum(stats.msgs_delivered for stats in references)
    cluster.run_for(duration)
    messages = sum(stats.msgs_delivered for stats in references) - msgs0
    return messages / duration


def measure_service(num_clients: int, capacity: float,
                    duration: float, warmup: float,
                    seed: int = 42, workload_seed: int = 1) -> Dict[str, Any]:
    """One closed-loop overload run against the facade; SLO metrics.

    The facade's admit rate is set to the measured ``capacity`` and the
    client population is sized to offer ``OVERLOAD_FACTOR`` times that,
    so roughly half the offered load must be shed for goodput to hold.
    """
    cluster = _build_cluster(seed)
    cluster.start()
    registry = MetricRegistry()
    facade = ServiceFacade(cluster, ServiceConfig(
        name="bench", rate=capacity, burst=256,
        queue_capacity=512, per_client_limit=64,
        inflight_windows=4.0), registry=registry)
    think_mean = num_clients / (OVERLOAD_FACTOR * capacity)
    workload = ClosedLoopWorkload(facade, num_clients=num_clients,
                                  think_mean=think_mean,
                                  seed=workload_seed, ramp=think_mean / 2)
    workload.start()
    cluster.run_for(warmup)
    mark = workload.checkpoint()
    latency_mark = len(workload.latencies)
    cluster.run_for(duration)
    window = {key: value - mark[key]
              for key, value in workload.checkpoint().items()}
    window_latencies = sorted(workload.latencies[latency_mark:])

    def percentile(values: List[float], q: float) -> float:
        if not values:
            return 0.0
        index = min(len(values) - 1, int(q * len(values)))
        return values[index]

    goodput = window["completed"] / duration
    snapshot = facade.slo_snapshot()
    return {
        "num_clients": num_clients,
        "think_mean": round(think_mean, 6),
        "virtual_duration": duration,
        "capacity_ops_per_sec": round(capacity, 1),
        "offered_rate": round(window["offered"] / duration, 1),
        "goodput_ops_per_sec": round(goodput, 1),
        "goodput_ratio": round(goodput / capacity, 4) if capacity else 0.0,
        "window": window,
        "latency_p50_ms": round(
            percentile(window_latencies, 0.50) * 1e3, 3),
        "latency_p99_ms": round(
            percentile(window_latencies, 0.99) * 1e3, 3),
        "slo": snapshot,
        "ring_stalls": snapshot["ring_stalls"],
    }


def run_service_measurement(quick: bool = False,
                            seed: int = 42) -> Dict[str, Any]:
    """Capacity probe + overload run, sized by ``quick``."""
    capacity = probe_capacity(duration=0.1 if quick else 0.2, seed=seed)
    num_clients = 20_000 if quick else 100_000
    duration = 0.4 if quick else 1.0
    warmup = 0.2 if quick else 0.4
    result = measure_service(num_clients, capacity,
                             duration=duration, warmup=warmup, seed=seed)
    result["overload_factor"] = OVERLOAD_FACTOR
    result["goodput_floor"] = GOODPUT_FLOOR
    result["p99_bound_ms"] = P99_BOUND_MS
    return result


def service_gate_failures(section: Dict[str, Any]) -> List[str]:
    """The three service SLO gates, as regression messages."""
    failures: List[str] = []
    ratio = section["goodput_ratio"]
    if ratio < GOODPUT_FLOOR:
        failures.append(
            f"service.goodput_ratio: {ratio:.3f} < required "
            f"{GOODPUT_FLOOR:.2f} of capacity under "
            f"{section['overload_factor']:.0f}x overload")
    p99 = section["latency_p99_ms"]
    if p99 > P99_BOUND_MS:
        failures.append(
            f"service.latency_p99_ms: {p99:.1f} ms > bound "
            f"{P99_BOUND_MS:.0f} ms")
    stalls = section["ring_stalls"]
    if stalls:
        failures.append(
            f"service.ring_stalls: {stalls} flow-window stalls "
            f"(the shedder must keep this at zero)")
    return failures


def run_service(output: str, baseline: Optional[str] = None,
                enforce: bool = True, quick: bool = False,
                label: Optional[str] = None,
                threshold: float = REGRESSION_THRESHOLD) -> Dict[str, Any]:
    """The full service bench document: fig6 gate workloads (for the
    baseline trajectory comparison) plus the overload SLO section and
    its three gates.
    """
    if label is None:
        stem = os.path.splitext(os.path.basename(output))[0]
        label = stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem
    baseline_path = baseline
    if baseline_path is None:
        baseline_path = find_baseline(os.path.dirname(output) or ".", output)
    base_doc = load_result(baseline_path) if baseline_path is not None else None
    result = run_gate_workloads(quick=quick, label=label,
                                repeats=1 if quick else 6)
    result["service"] = run_service_measurement(quick=quick)
    regressions: List[str] = []
    if base_doc is not None:
        regressions = compare(result, base_doc, threshold=threshold)
        result["baseline"] = os.path.basename(baseline_path)
    regressions.extend(service_gate_failures(result["service"]))
    result["regressions"] = regressions
    write_result(result, output)
    if regressions and enforce:
        raise GateError(
            "service bench gate failed:\n  " + "\n  ".join(regressions))
    return result
