"""Workload generators for the benchmark harness.

The paper's §8 setup: "every node sent as many messages as the Totem flow
control mechanism permitted".  :class:`SaturatingWorkload` reproduces that —
it keeps every node's send queue topped up so the flow-control window is the
only limiter.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..api.cluster import SimCluster
from ..types import NodeId


class SaturatingWorkload:
    """Keeps nodes' send queues full of fixed-size messages.

    A periodic refill event (default every millisecond of virtual time) tops
    each participating node's queue up to ``queue_target`` messages.  The
    payload carries the message index so correctness checks can detect loss
    or reordering even under saturation.
    """

    def __init__(self, cluster: SimCluster, message_size: int,
                 senders: Optional[Sequence[NodeId]] = None,
                 queue_target: int = 256,
                 refill_interval: float = 0.001) -> None:
        if message_size < 8:
            raise ValueError("message_size must be >= 8 (room for the index)")
        self.cluster = cluster
        self.message_size = message_size
        self.senders = list(senders) if senders is not None else sorted(cluster.nodes)
        self.queue_target = queue_target
        self.refill_interval = refill_interval
        self.sent: Dict[NodeId, int] = {node: 0 for node in self.senders}
        self._running = False
        self._pad = b"\x00" * (message_size - 8)

    @property
    def total_sent(self) -> int:
        return sum(self.sent.values())

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._refill()

    def stop(self) -> None:
        self._running = False

    def _payload(self, node: NodeId) -> bytes:
        index = self.sent[node]
        return index.to_bytes(8, "big") + self._pad

    def _refill(self) -> None:
        if not self._running:
            return
        target = self.queue_target
        pad = self._pad
        for node_id in self.senders:
            node = self.cluster.nodes[node_id]
            deficit = target - len(node.srp.send_queue)
            if deficit > 0:
                index = self.sent[node_id]
                # Bulk top-up through the batch submission path: one queue
                # capacity check per refill tick instead of one per message.
                accepted = node.srp.submit_many(
                    [(index + i).to_bytes(8, "big") + pad
                     for i in range(deficit)])
                self.sent[node_id] = index + accepted
        self.cluster.scheduler.call_after(self.refill_interval, self._refill)


class MultiRingSaturatingWorkload:
    """Saturates every engine of every ring of a multi-ring cluster.

    Same shape as :class:`SaturatingWorkload`, but walks all ``(group,
    member)`` engines so each ring's flow-control window is the only
    limiter — the aggregate-throughput scaling measurement.  Payloads are
    submitted through the engines directly (pre-wrapped as multiring data
    frames) so the bench measures the ordered hot path, not key hashing.
    """

    def __init__(self, cluster, message_size: int,
                 queue_target: int = 256,
                 refill_interval: float = 0.001) -> None:
        if message_size < 9:
            raise ValueError("message_size must be >= 9 (prefix + index)")
        from ..multiring.merge import DATA_PREFIX
        self.cluster = cluster
        self.message_size = message_size
        self.queue_target = queue_target
        self.refill_interval = refill_interval
        self.engines = [cluster.nodes[addr] for addr in sorted(cluster.nodes)]
        self.sent: Dict[NodeId, int] = {e.node_id: 0 for e in self.engines}
        self._running = False
        self._head = DATA_PREFIX
        self._pad = b"\x00" * (message_size - 9)

    @property
    def total_sent(self) -> int:
        return sum(self.sent.values())

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._refill()

    def stop(self) -> None:
        self._running = False

    def _refill(self) -> None:
        if not self._running:
            return
        target = self.queue_target
        head = self._head
        pad = self._pad
        for node in self.engines:
            deficit = target - len(node.srp.send_queue)
            if deficit > 0:
                index = self.sent[node.node_id]
                accepted = node.srp.submit_many(
                    [head + (index + i).to_bytes(8, "big") + pad
                     for i in range(deficit)])
                self.sent[node.node_id] = index + accepted
        self.cluster.scheduler.call_after(self.refill_interval, self._refill)
