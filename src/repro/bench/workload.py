"""Workload generators for the benchmark harness.

The paper's §8 setup: "every node sent as many messages as the Totem flow
control mechanism permitted".  :class:`SaturatingWorkload` reproduces that —
it keeps every node's send queue topped up so the flow-control window is the
only limiter.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..api.cluster import SimCluster
from ..types import NodeId


class SaturatingWorkload:
    """Keeps nodes' send queues full of fixed-size messages.

    A periodic refill event (default every millisecond of virtual time) tops
    each participating node's queue up to ``queue_target`` messages.  The
    payload carries the message index so correctness checks can detect loss
    or reordering even under saturation.
    """

    def __init__(self, cluster: SimCluster, message_size: int,
                 senders: Optional[Sequence[NodeId]] = None,
                 queue_target: int = 256,
                 refill_interval: float = 0.001) -> None:
        if message_size < 8:
            raise ValueError("message_size must be >= 8 (room for the index)")
        self.cluster = cluster
        self.message_size = message_size
        self.senders = list(senders) if senders is not None else sorted(cluster.nodes)
        self.queue_target = queue_target
        self.refill_interval = refill_interval
        self.sent: Dict[NodeId, int] = {node: 0 for node in self.senders}
        self._running = False
        self._pad = b"\x00" * (message_size - 8)

    @property
    def total_sent(self) -> int:
        return sum(self.sent.values())

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._refill()

    def stop(self) -> None:
        self._running = False

    def _payload(self, node: NodeId) -> bytes:
        index = self.sent[node]
        return index.to_bytes(8, "big") + self._pad

    def _refill(self) -> None:
        if not self._running:
            return
        target = self.queue_target
        pad = self._pad
        for node_id in self.senders:
            node = self.cluster.nodes[node_id]
            deficit = target - len(node.srp.send_queue)
            if deficit > 0:
                index = self.sent[node_id]
                # Bulk top-up through the batch submission path: one queue
                # capacity check per refill tick instead of one per message.
                accepted = node.srp.submit_many(
                    [(index + i).to_bytes(8, "big") + pad
                     for i in range(deficit)])
                self.sent[node_id] = index + accepted
        self.cluster.scheduler.call_after(self.refill_interval, self._refill)


class MultiRingSaturatingWorkload:
    """Saturates every engine of every ring of a multi-ring cluster.

    Same shape as :class:`SaturatingWorkload`, but walks all ``(group,
    member)`` engines so each ring's flow-control window is the only
    limiter — the aggregate-throughput scaling measurement.  Payloads are
    submitted through the engines directly (pre-wrapped as multiring data
    frames) so the bench measures the ordered hot path, not key hashing.
    """

    def __init__(self, cluster, message_size: int,
                 queue_target: int = 256,
                 refill_interval: float = 0.001) -> None:
        if message_size < 9:
            raise ValueError("message_size must be >= 9 (prefix + index)")
        from ..multiring.merge import DATA_PREFIX
        self.cluster = cluster
        self.message_size = message_size
        self.queue_target = queue_target
        self.refill_interval = refill_interval
        self.engines = [cluster.nodes[addr] for addr in sorted(cluster.nodes)]
        self.sent: Dict[NodeId, int] = {e.node_id: 0 for e in self.engines}
        self._running = False
        self._head = DATA_PREFIX
        self._pad = b"\x00" * (message_size - 9)

    @property
    def total_sent(self) -> int:
        return sum(self.sent.values())

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._refill()

    def stop(self) -> None:
        self._running = False

    def _refill(self) -> None:
        if not self._running:
            return
        target = self.queue_target
        head = self._head
        pad = self._pad
        for node in self.engines:
            deficit = target - len(node.srp.send_queue)
            if deficit > 0:
                index = self.sent[node.node_id]
                accepted = node.srp.submit_many(
                    [head + (index + i).to_bytes(8, "big") + pad
                     for i in range(deficit)])
                self.sent[node.node_id] = index + accepted
        self.cluster.scheduler.call_after(self.refill_interval, self._refill)


class ClosedLoopWorkload:
    """Closed-loop virtual-client population driving a service facade.

    Models 10^5-10^6 independent clients the way a load generator for a
    production front-end would: each virtual client issues one request,
    waits for its outcome, *thinks*, and issues the next.  Think times
    (and each client's initial offset) are Pareto-distributed — the
    heavy-tailed arrival pattern real user populations exhibit — so
    bursts arrive even at a fixed mean offered rate.

    The loop is *closed*: a client never has more than one request
    outstanding, so the offered rate self-limits as latency grows
    (``num_clients / (think_mean + latency)``), and sheds feed back as
    retry backoff.  Steady-state offered rate with negligible latency is
    ``num_clients / think_mean`` — pick ``think_mean`` to dial overload.

    Every draw comes from one seeded :class:`random.Random` and every
    delay runs on the cluster's virtual clock, so a run is a pure
    function of (cluster seed, workload seed, parameters).
    """

    #: Pareto shape: heavy-tailed but finite-mean (alpha > 1).
    ALPHA = 1.5
    #: Tail cap in multiples of the mean, so no single client sleeps
    #: past the measurement horizon.
    TAIL_CAP = 50.0

    def __init__(self, facade, num_clients: int, think_mean: float,
                 key_space: int = 4096, value_size: int = 32,
                 deadline: Optional[float] = None,
                 seed: int = 1, ramp: Optional[float] = None) -> None:
        if num_clients < 1:
            raise ValueError("need at least one virtual client")
        if think_mean <= 0:
            raise ValueError("think_mean must be positive")
        self.facade = facade
        self.scheduler = facade.scheduler
        self.num_clients = num_clients
        self.think_mean = think_mean
        self.key_space = key_space
        self.deadline = deadline
        self.ramp = ramp if ramp is not None else think_mean
        self.rng = random.Random(seed)
        self._value = b"\x5a" * value_size
        #: Pareto scale for mean ``m``: x_m = m * (alpha - 1) / alpha.
        self._scale = (self.ALPHA - 1.0) / self.ALPHA
        self._running = False
        self.offered = 0
        self.admitted = 0
        self.shed = 0
        self.completed = 0
        self.latencies: List[float] = []
        facade.on_decision(self._on_decision)
        facade.on_complete(self._on_complete)

    # -- distributions -------------------------------------------------

    def _pareto(self, mean: float) -> float:
        """One Pareto(alpha) draw with the given mean, tail-capped."""
        u = 1.0 - self.rng.random()  # (0, 1]
        draw = mean * self._scale / (u ** (1.0 / self.ALPHA))
        return min(draw, mean * self.TAIL_CAP)

    def _key(self) -> bytes:
        return b"k%06d" % self.rng.randrange(self.key_space)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Ramp every client in with a Pareto-staggered first request."""
        if self._running:
            return
        self._running = True
        for client in range(1, self.num_clients + 1):
            self.scheduler.call_after(self._pareto(self.ramp),
                                      self._fire, client)

    def stop(self) -> None:
        self._running = False

    def checkpoint(self) -> Dict[str, int]:
        """Counter snapshot (subtract two to get a measurement window)."""
        return {"offered": self.offered, "admitted": self.admitted,
                "shed": self.shed, "completed": self.completed}

    # -- the client loop -----------------------------------------------

    def _fire(self, client: int) -> None:
        if not self._running:
            return
        self.offered += 1
        self.facade.set(client, self._key(), self._value,
                        deadline=(self.scheduler.now() + self.deadline
                                  if self.deadline is not None else None))
        # The outcome arrives through _on_decision / _on_complete —
        # including synchronous admits/sheds, which the facade reports
        # through the same callbacks before ``set`` returns.

    def _on_decision(self, request, response) -> None:
        from ..service.types import Shed
        if not isinstance(response, Shed):
            self.admitted += 1
            return  # next think starts at completion
        self.shed += 1
        if self._running:
            backoff = max(response.retry_after, self._pareto(self.think_mean))
            self.scheduler.call_after(backoff, self._fire, request.client)

    def _on_complete(self, client: int, uid: int, latency: float) -> None:
        self.completed += 1
        self.latencies.append(latency)
        if self._running:
            self.scheduler.call_after(self._pareto(self.think_mean),
                                      self._fire, client)
