"""Benchmark harness reproducing the paper's evaluation (§8).

Every table and figure in the paper maps to a function here (see the
experiment index in DESIGN.md):

* Figures 6/7 — total send rate (msgs/s) vs message size, 4 and 6 nodes,
* Figures 8/9 — bandwidth (Kbytes/s) vs message size, 4 and 6 nodes,
* the §2/§8 textual claims (SRP saturation ~9,000 1-Kbyte msgs/s at ~90 %
  Ethernet utilisation; active costs 1000-1500 msgs/s; passive gains
  2000-4000 Kbytes/s),
* extension experiments the authors could not run (active-passive needs
  three networks; they had two).

Run ``totem-bench --help`` or ``python -m repro.bench``.
"""

from .gate import REGRESSION_THRESHOLD, compare, load_result, run_gate
from .runner import ThroughputResult, run_throughput
from .workload import SaturatingWorkload
from .figures import (
    FigurePoint,
    FigureResult,
    run_figure,
    figure6,
    figure7,
    figure8,
    figure9,
    table_srp_saturation,
    table_claims,
    extension_active_passive,
    extension_failover_timeline,
)

__all__ = [
    "REGRESSION_THRESHOLD",
    "compare",
    "load_result",
    "run_gate",
    "ThroughputResult",
    "run_throughput",
    "SaturatingWorkload",
    "FigurePoint",
    "FigureResult",
    "run_figure",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "table_srp_saturation",
    "table_claims",
    "extension_active_passive",
    "extension_failover_timeline",
]
