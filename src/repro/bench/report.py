"""Plain-text rendering of benchmark results (tables and ASCII charts).

The paper's figures are log-log plots of rate vs message size; the ASCII
chart here renders the same series on a log-log grid so the *shape* (who
wins, where the curves cross, where the packing peaks sit) is visible in a
terminal or a CI log.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

Series = Dict[str, List[Tuple[float, float]]]

_MARKERS = "ox+*#@"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """A simple aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def ascii_loglog_chart(series: Series, width: int = 64, height: int = 18,
                       x_label: str = "message length (bytes)",
                       y_label: str = "") -> str:
    """Render series on a log-log character grid, paper-figure style."""
    points = [(x, y) for pts in series.values() for x, y in pts if x > 0 and y > 0]
    if not points:
        return "(no data)"
    x_min = min(p[0] for p in points)
    x_max = max(p[0] for p in points)
    y_min = min(p[1] for p in points)
    y_max = max(p[1] for p in points)
    if x_min == x_max:
        x_max = x_min * 10
    if y_min == y_max:
        y_max = y_min * 10

    def col(x: float) -> int:
        frac = (math.log10(x) - math.log10(x_min)) / (
            math.log10(x_max) - math.log10(x_min))
        return min(width - 1, max(0, int(round(frac * (width - 1)))))

    def row(y: float) -> int:
        frac = (math.log10(y) - math.log10(y_min)) / (
            math.log10(y_max) - math.log10(y_min))
        return min(height - 1, max(0, int(round(frac * (height - 1)))))

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for marker, (name, pts) in zip(_MARKERS, sorted(series.items())):
        legend.append(f"  {marker} = {name}")
        for x, y in pts:
            if x <= 0 or y <= 0:
                continue
            r, c = row(y), col(x)
            cell = grid[height - 1 - r][c]
            grid[height - 1 - r][c] = marker if cell == " " else "&"

    lines = []
    if y_label:
        lines.append(y_label)
    top = f"{y_max:,.0f}"
    bottom = f"{y_min:,.0f}"
    pad = max(len(top), len(bottom))
    for i, grid_row in enumerate(grid):
        if i == 0:
            prefix = top.rjust(pad)
        elif i == height - 1:
            prefix = bottom.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(grid_row)}|")
    lines.append(" " * pad + " +" + "-" * width + "+")
    x_axis = f"{x_min:,.0f}".ljust(width // 2) + f"{x_max:,.0f}".rjust(width // 2)
    lines.append(" " * pad + "  " + x_axis)
    lines.append(" " * pad + "  " + x_label + "  (log-log)")
    lines.extend(legend)
    lines.append("  & = overlapping points")
    return "\n".join(lines)
