"""``python -m repro.bench`` — see :mod:`repro.bench.cli`."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
