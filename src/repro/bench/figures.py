"""One function per table/figure of the paper's evaluation (§8).

See DESIGN.md's experiment index.  Each ``figure*`` function returns a
:class:`FigureResult` whose ``render()`` prints the same series the paper
plots; ``table_*`` functions reproduce the in-text numeric claims; the
``extension_*`` functions run the experiments the authors could not
(active-passive needs three networks; they had two) plus the transparency
timeline behind the paper's availability claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import LanConfig
from ..net.faults import FaultPlan
from ..api.cluster import SimCluster
from ..types import ReplicationStyle
from .report import ascii_loglog_chart, format_table
from .runner import ThroughputResult, build_config, run_throughput
from .workload import SaturatingWorkload

#: The message-size sweep of Figures 6-9 (10^2 .. ~10^4+ bytes, log-spaced,
#: with the paper's 700/1400-byte packing-peak sizes included).
MESSAGE_SIZES: Tuple[int, ...] = (
    100, 200, 350, 512, 700, 1024, 1400, 2048, 4096, 8192, 16384)
#: Reduced sweep for quick runs and pytest-benchmark targets.
QUICK_SIZES: Tuple[int, ...] = (100, 700, 1024, 1400, 4096)

#: The three styles the paper measures (it had only two networks, §8).
PAPER_STYLES: Tuple[ReplicationStyle, ...] = (
    ReplicationStyle.NONE, ReplicationStyle.ACTIVE, ReplicationStyle.PASSIVE)


@dataclass(frozen=True)
class FigurePoint:
    style: ReplicationStyle
    message_size: int
    msgs_per_sec: float
    kbytes_per_sec: float
    result: ThroughputResult


@dataclass
class FigureResult:
    """A reproduced figure: every (style, size) point plus rendering."""

    name: str
    title: str
    num_nodes: int
    unit: str  # "msgs/s" or "KB/s"
    points: List[FigurePoint] = field(default_factory=list)

    def value_of(self, point: FigurePoint) -> float:
        return (point.msgs_per_sec if self.unit == "msgs/s"
                else point.kbytes_per_sec)

    def series(self) -> Dict[str, List[Tuple[float, float]]]:
        out: Dict[str, List[Tuple[float, float]]] = {}
        for point in self.points:
            out.setdefault(point.style.value, []).append(
                (point.message_size, self.value_of(point)))
        for values in out.values():
            values.sort()
        return out

    def get(self, style: ReplicationStyle, size: int) -> Optional[FigurePoint]:
        for point in self.points:
            if point.style is style and point.message_size == size:
                return point
        return None

    def to_table(self) -> str:
        styles = sorted({p.style for p in self.points}, key=lambda s: s.value)
        sizes = sorted({p.message_size for p in self.points})
        headers = ["size (B)"] + [s.value for s in styles]
        rows = []
        for size in sizes:
            row = [str(size)]
            for style in styles:
                point = self.get(style, size)
                row.append(f"{self.value_of(point):,.0f}" if point else "-")
            rows.append(row)
        return format_table(headers, rows)

    def render(self) -> str:
        chart = ascii_loglog_chart(self.series(), y_label=self.unit)
        return (f"=== {self.title} ===\n"
                f"({self.num_nodes} nodes, unit: {self.unit})\n\n"
                f"{self.to_table()}\n\n{chart}\n")


def run_figure(name: str, title: str, num_nodes: int, unit: str,
               sizes: Sequence[int] = MESSAGE_SIZES,
               styles: Sequence[ReplicationStyle] = PAPER_STYLES,
               duration: float = 0.5, warmup: float = 0.2,
               lan: Optional[LanConfig] = None, seed: int = 1) -> FigureResult:
    """Sweep (style, message size) and collect one figure's points."""
    figure = FigureResult(name=name, title=title, num_nodes=num_nodes, unit=unit)
    for style in styles:
        for size in sizes:
            result = run_throughput(style, num_nodes, size,
                                    duration=duration, warmup=warmup,
                                    lan=lan, seed=seed)
            figure.points.append(FigurePoint(
                style=style, message_size=size,
                msgs_per_sec=result.msgs_per_sec,
                kbytes_per_sec=result.kbytes_per_sec,
                result=result))
    return figure


def _sweep_args(quick: bool) -> dict:
    if quick:
        return {"sizes": QUICK_SIZES, "duration": 0.25, "warmup": 0.1}
    return {"sizes": MESSAGE_SIZES, "duration": 0.5, "warmup": 0.2}


def figure6(quick: bool = False, **kwargs) -> FigureResult:
    """Figure 6: transmission rate (msgs/s) vs message size, four nodes."""
    return run_figure("fig6", "Figure 6: Totem RRP send rate, 4 nodes",
                      num_nodes=4, unit="msgs/s",
                      **{**_sweep_args(quick), **kwargs})


def figure7(quick: bool = False, **kwargs) -> FigureResult:
    """Figure 7: transmission rate (msgs/s) vs message size, six nodes."""
    return run_figure("fig7", "Figure 7: Totem RRP send rate, 6 nodes",
                      num_nodes=6, unit="msgs/s",
                      **{**_sweep_args(quick), **kwargs})


def figure8(quick: bool = False, **kwargs) -> FigureResult:
    """Figure 8: bandwidth (Kbytes/s) vs message size, four nodes."""
    return run_figure("fig8", "Figure 8: Totem RRP bandwidth, 4 nodes",
                      num_nodes=4, unit="KB/s",
                      **{**_sweep_args(quick), **kwargs})


def figure9(quick: bool = False, **kwargs) -> FigureResult:
    """Figure 9: bandwidth (Kbytes/s) vs message size, six nodes."""
    return run_figure("fig9", "Figure 9: Totem RRP bandwidth, 6 nodes",
                      num_nodes=6, unit="KB/s",
                      **{**_sweep_args(quick), **kwargs})


def as_bandwidth_view(figure: FigureResult, name: str, title: str) -> FigureResult:
    """Re-express a msgs/s figure in KB/s without re-running the sweep.

    Figures 8/9 plot the same experiments as Figures 6/7 in different units;
    the CLI uses this to avoid running every sweep twice.
    """
    view = FigureResult(name=name, title=title,
                        num_nodes=figure.num_nodes, unit="KB/s")
    view.points = list(figure.points)
    return view


# ----------------------------------------------------------------------
# In-text numeric claims (experiment ids T1 and T2 in DESIGN.md)
# ----------------------------------------------------------------------

def table_srp_saturation(duration: float = 0.5, warmup: float = 0.2) -> str:
    """T1 (§2/§8): SRP alone moves >9,000 1-Kbyte msgs/s at ~90 % utilisation."""
    result = run_throughput(ReplicationStyle.NONE, 4, 1024,
                            duration=duration, warmup=warmup)
    rows = [[
        "SRP, 4 nodes, 1024 B",
        f"{result.msgs_per_sec:,.0f}",
        f"{result.network_utilization[0]:.1%}",
        ">9,000 msgs/s at ~90% (paper §2)",
    ]]
    return format_table(
        ["configuration", "msgs/s", "ethernet utilisation", "paper claim"], rows)


def table_claims(figure: Optional[FigureResult] = None,
                 quick: bool = True) -> str:
    """T2 (§8 text): packing peaks, active deficit, passive gain."""
    if figure is None:
        figure = figure6(quick=quick)
    rows = []

    def rate(style: ReplicationStyle, size: int) -> Optional[float]:
        point = figure.get(style, size)
        return point.msgs_per_sec if point else None

    def kbps(style: ReplicationStyle, size: int) -> Optional[float]:
        point = figure.get(style, size)
        return point.kbytes_per_sec if point else None

    # Packing peaks at 700 and 1400 bytes (two / one messages per frame).
    for size, neighbor in ((700, 1024), (1400, 2048)):
        peak = kbps(ReplicationStyle.NONE, size)
        after = kbps(ReplicationStyle.NONE, neighbor)
        if peak is not None and after is not None:
            rows.append([
                f"packing peak @{size}B",
                f"{peak:,.0f} KB/s vs {after:,.0f} KB/s @{neighbor}B",
                "local maximum (paper §8)",
                "yes" if peak > after else "NO",
            ])

    # Active replication costs 1000-1500 msgs/s against no replication.
    for size in (700, 1024, 1400):
        base = rate(ReplicationStyle.NONE, size)
        active = rate(ReplicationStyle.ACTIVE, size)
        if base is None or active is None:
            continue
        rows.append([
            f"active deficit @{size}B",
            f"{base - active:,.0f} msgs/s",
            "1,000-1,500 msgs/s (paper §8)",
            "yes" if base > active else "NO",
        ])

    # Passive replication gains 2000-4000 KB/s of payload over no replication.
    for size in (1024, 1400, 4096):
        base = kbps(ReplicationStyle.NONE, size)
        passive = kbps(ReplicationStyle.PASSIVE, size)
        if base is None or passive is None:
            continue
        rows.append([
            f"passive gain @{size}B",
            f"{passive - base:,.0f} KB/s",
            "2,000-4,000 KB/s (paper §8)",
            "yes" if passive > base else "NO",
        ])
    return format_table(["claim", "measured", "paper", "shape holds"], rows)


# ----------------------------------------------------------------------
# Extension experiments (X1, X3 in DESIGN.md)
# ----------------------------------------------------------------------

def extension_active_passive(quick: bool = True,
                             sizes: Optional[Sequence[int]] = None) -> FigureResult:
    """X1: the experiment the paper could not run — active-passive, N=3 K=2.

    §8: "We did not conduct any experiments for active-passive replication,
    because it requires a minimum of three networks and we had only two
    networks available to us."  The simulator has as many as we like.
    """
    args = _sweep_args(quick)
    if sizes is not None:
        args["sizes"] = tuple(sizes)
    styles = (ReplicationStyle.NONE, ReplicationStyle.ACTIVE,
              ReplicationStyle.PASSIVE, ReplicationStyle.ACTIVE_PASSIVE)
    return run_figure("x1", "Extension X1: active-passive (N=3, K=2) vs paper styles",
                      num_nodes=4, unit="msgs/s", styles=styles, **args)


def extension_failover_timeline(style: ReplicationStyle = ReplicationStyle.ACTIVE,
                                message_size: int = 1024,
                                fail_at: float = 0.4,
                                total: float = 1.0,
                                bin_width: float = 0.1) -> str:
    """X3: throughput timeline across a total network failure.

    Demonstrates the paper's headline claim (§1/§3): the failure of one of
    the redundant networks is transparent — no membership change, delivery
    continues — while fault reports alert the administrator.
    """
    config = build_config(style, num_nodes=4)
    cluster = SimCluster(config)
    cluster.apply_fault_plan(FaultPlan().fail_network(at=fail_at, network=config.totem.num_networks - 1))
    cluster.start()
    workload = SaturatingWorkload(cluster, message_size)
    workload.start()
    reference = cluster.nodes[1]
    rows = []
    previous = 0
    t = 0.0
    while t < total:
        t += bin_width
        cluster.run_until(t)
        delivered = reference.srp.stats.msgs_delivered
        rate = (delivered - previous) / bin_width
        previous = delivered
        marker = " <- network failed" if fail_at <= t < fail_at + bin_width else ""
        rows.append([f"{t - bin_width:.1f}-{t:.1f}s", f"{rate:,.0f}",
                     str(reference.srp.stats.membership_changes - 1),
                     str(len(cluster.all_fault_reports())) + marker])
    return format_table(
        [f"window ({style.value})", "msgs/s", "membership changes", "fault reports"],
        rows)
