"""``python -m repro.bench profile`` — cProfile the hot workloads.

This is how the compiled core's contents were chosen (and how a reviewer
audits them): profile the fig6 microworkload and the closed-loop service
workload, print the top-N functions by cumulative and internal time, and
dump the raw ``pstats`` data to a file for interactive digging::

    python -m repro.bench profile                        # both workloads
    python -m repro.bench profile --workload fig6 --top 15
    python -m repro.bench profile --pstats-out prof.pstats
    REPRO_PURE=1 python -m repro.bench profile           # pure-mode profile

A function that is hot here and absent from ``docs/PERFORMANCE.md``'s
compiled-surface table is either newly hot (a regression to chase) or a
deliberate pure-Python residue (protocol logic, documented there).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from typing import Any, Dict, Optional

PROFILE_WORKLOADS = ("fig6", "service", "all")


def _profile_fig6(quick: bool) -> cProfile.Profile:
    """One saturated fig6 measurement (700 B, 4 nodes, active) under profile."""
    from ..types import ReplicationStyle
    from .gate import _measure_workload
    duration = 0.1 if quick else 0.5
    warmup = 0.02 if quick else 0.05
    # Warm up outside the profile so import/alloc one-offs don't dominate.
    _measure_workload(ReplicationStyle.ACTIVE, 4, 700, min(0.1, duration),
                      0.02, seed=42, enable_batching=True)
    profiler = cProfile.Profile()
    profiler.enable()
    _measure_workload(ReplicationStyle.ACTIVE, 4, 700, duration, warmup,
                      seed=42, enable_batching=True)
    profiler.disable()
    return profiler


def _profile_service(quick: bool) -> cProfile.Profile:
    """The closed-loop service workload (admission/shed path) under profile."""
    from .service import run_service_measurement
    profiler = cProfile.Profile()
    profiler.enable()
    run_service_measurement(quick=True if quick else False)
    profiler.disable()
    return profiler


def render_stats(profiler: cProfile.Profile, top: int) -> str:
    """Top-N table, by cumulative then by internal time."""
    out = io.StringIO()
    stats = pstats.Stats(profiler, stream=out)
    stats.sort_stats("cumulative").print_stats(top)
    stats.sort_stats("tottime").print_stats(top)
    return out.getvalue()


def run_profile(workload: str = "all", top: int = 25,
                pstats_out: Optional[str] = None,
                quick: bool = False) -> Dict[str, Any]:
    """Profile the requested workload(s); return ``{name: rendered table}``.

    ``pstats_out`` dumps the raw stats (of the last workload profiled when
    both run) for ``pstats.Stats(file)`` / snakeviz-style tooling.
    """
    if workload not in PROFILE_WORKLOADS:
        raise ValueError(
            f"unknown profile workload {workload!r} "
            f"(choose from {', '.join(PROFILE_WORKLOADS)})")
    if top < 1:
        raise ValueError(f"--top must be >= 1, got {top}")
    selected = ("fig6", "service") if workload == "all" else (workload,)
    tables: Dict[str, Any] = {}
    last: Optional[cProfile.Profile] = None
    for name in selected:
        profiler = (_profile_fig6(quick) if name == "fig6"
                    else _profile_service(quick))
        tables[name] = render_stats(profiler, top)
        last = profiler
    if pstats_out is not None and last is not None:
        last.dump_stats(pstats_out)
        tables["pstats_out"] = pstats_out
    return tables


def main_profile(args) -> int:
    """CLI glue for the ``profile`` target (argparse namespace in)."""
    try:
        tables = run_profile(workload=args.workload, top=args.top,
                             pstats_out=args.pstats_out, quick=args.quick)
    except ValueError as exc:
        print(f"profile: {exc}", file=sys.stderr)
        return 1
    for name in ("fig6", "service"):
        if name in tables:
            print(f"=== profile: {name} workload ===")
            print(tables[name])
    if "pstats_out" in tables:
        print(f"[pstats dumped to {tables['pstats_out']}]", file=sys.stderr)
    return 0
