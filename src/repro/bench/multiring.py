"""Multi-ring scaling benchmark: aggregate ops/s vs ring count.

``python -m repro.bench multiring`` saturates every engine of a
multi-ring cluster at several ring counts and reports two aggregate
throughput figures per point:

* ``virtual_ops_per_sec`` — delivered messages per *virtual* second,
  summed over rings.  This is the protocol-capacity scaling claim (each
  ring has its own engines and CPUs; only the media are shared) and is
  deterministic per seed and machine-independent.
* ``ops_per_sec`` — delivered messages per *wall* second.  The whole
  multiplexed simulation runs on one host thread, so this measures
  simulator cost, not protocol capacity; it is recorded for honesty but
  is not the scaling gate.

The media are provisioned at gigabit (vs the paper's 100 Mbit testbed)
so the shared wire is not the first bottleneck — the point of
partitioning into rings is scaling the per-ring CPU/ordering bound, and
a saturated 100 Mbit medium would cap the aggregate at one ring's rate.
"""

from __future__ import annotations

import gc
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from ..config import LanConfig, TotemConfig
from ..errors import GateError
from ..multiring import MultiRingCluster, MultiRingConfig
from ..types import ReplicationStyle
from .gate import (
    REGRESSION_THRESHOLD,
    compare,
    find_baseline,
    load_result,
    run_gate_workloads,
    write_result,
)
from .workload import MultiRingSaturatingWorkload

#: Ring counts swept by the scaling benchmark.
RING_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)
#: Aggregate virtual ops/s at max rings must be at least this multiple of
#: the 1-ring figure (the PR-8 acceptance bar).
SCALING_FLOOR = 4.0
#: Shared media for the sweep: gigabit, otherwise the paper's testbed.
MULTIRING_LAN = LanConfig(bandwidth_bps=1_000_000_000.0)


def measure_multiring(num_rings: int, num_nodes: int = 4,
                      message_size: int = 512, duration: float = 0.3,
                      warmup: float = 0.1, seed: int = 42) -> Dict[str, Any]:
    """One saturated multi-ring run; returns raw and derived metrics."""
    config = MultiRingConfig(
        num_rings=num_rings, num_nodes=num_nodes,
        totem=TotemConfig(replication=ReplicationStyle.ACTIVE,
                          num_networks=2, enable_batching=True),
        lan=MULTIRING_LAN, seed=seed)
    cluster = MultiRingCluster(config)
    cluster.start()
    workload = MultiRingSaturatingWorkload(cluster, message_size)
    workload.start()
    cluster.run_for(warmup)
    # One reference engine per ring: every member of a ring delivers the
    # same stream, so the ring's throughput is its representative's.
    references = [view.representative.srp.stats
                  for view in cluster.groups.values()]
    events0 = cluster.scheduler.events_processed
    msgs0 = sum(stats.msgs_delivered for stats in references)
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        cluster.run_for(duration)
        wall = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    events = cluster.scheduler.events_processed - events0
    messages = sum(stats.msgs_delivered for stats in references) - msgs0
    wall = max(wall, 1e-9)
    return {
        "num_rings": num_rings,
        "num_nodes": num_nodes,
        "message_size": message_size,
        "virtual_duration": duration,
        "events": events,
        "messages": messages,
        "wall_seconds": round(wall, 6),
        "events_per_sec": round(events / wall, 1),
        "ops_per_sec": round(messages / wall, 1),
        "virtual_ops_per_sec": round(messages / duration, 1),
    }


def run_multiring_sweep(quick: bool = False,
                        ring_counts: Tuple[int, ...] = RING_COUNTS,
                        message_size: int = 512) -> Dict[str, Any]:
    """Sweep ring counts; derive per-point scaling vs the 1-ring figure."""
    duration = 0.1 if quick else 0.3
    warmup = 0.05 if quick else 0.1
    results: Dict[str, Any] = {}
    for count in ring_counts:
        results[str(count)] = measure_multiring(
            count, message_size=message_size,
            duration=duration, warmup=warmup)
    base = results[str(ring_counts[0])]["virtual_ops_per_sec"]
    scaling = {
        str(count): round(
            results[str(count)]["virtual_ops_per_sec"] / base, 3)
        if base else 0.0
        for count in ring_counts
    }
    return {
        "message_size": message_size,
        "ring_counts": list(ring_counts),
        "results": results,
        "scaling_vs_1ring": scaling,
        "max_scaling": scaling[str(ring_counts[-1])],
        "scaling_floor": SCALING_FLOOR,
    }


def run_multiring(output: str, baseline: Optional[str] = None,
                  enforce: bool = True, quick: bool = False,
                  label: Optional[str] = None,
                  threshold: float = REGRESSION_THRESHOLD) -> Dict[str, Any]:
    """The full multiring bench document: single-ring gate workloads (so
    the fig6 baseline comparison still applies), plus the ring-count
    sweep and its scaling check.

    With ``enforce``, failing either the baseline comparison or the
    ``SCALING_FLOOR`` aggregate-scaling bar raises
    :class:`~repro.errors.GateError`.
    """
    if label is None:
        stem = os.path.splitext(os.path.basename(output))[0]
        label = stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem
    baseline_path = baseline
    if baseline_path is None:
        baseline_path = find_baseline(os.path.dirname(output) or ".", output)
    base_doc = load_result(baseline_path) if baseline_path is not None else None
    # Wall metrics keep the best repeat (measuring capacity, not scheduler
    # luck); on single-core runners the run-to-run spread exceeds the 10 %
    # gate threshold at the default 3 repeats, so spend a few more here.
    result = run_gate_workloads(quick=quick, label=label,
                                repeats=1 if quick else 6)
    result["multiring"] = run_multiring_sweep(quick=quick)
    regressions: List[str] = []
    if base_doc is not None:
        regressions = compare(result, base_doc, threshold=threshold)
        result["baseline"] = os.path.basename(baseline_path)
    max_scaling = result["multiring"]["max_scaling"]
    max_rings = result["multiring"]["ring_counts"][-1]
    if max_scaling < SCALING_FLOOR:
        regressions.append(
            f"multiring.max_scaling: {max_scaling}x aggregate virtual "
            f"ops/s at {max_rings} rings < required {SCALING_FLOOR}x")
    result["regressions"] = regressions
    write_result(result, output)
    if regressions and enforce:
        raise GateError(
            "multiring bench gate failed:\n  " + "\n  ".join(regressions))
    return result
