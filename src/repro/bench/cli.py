"""Command-line entry point: regenerate any of the paper's figures/tables.

Examples::

    totem-bench fig6 --quick       # Figure 6, reduced sweep
    totem-bench all                # every figure + every table (slow)
    totem-bench claims             # the §8 in-text numeric claims
    totem-bench failover           # extension X3: transparency timeline
    python -m repro.bench fig8
    python -m repro.bench gate     # perf-regression gate (BENCH_*.json)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from ..types import ReplicationStyle
from . import figures

TARGETS = ("fig6", "fig7", "fig8", "fig9", "srp", "claims", "ap", "failover",
           "gate", "multiring", "service", "profile", "all")


def _maybe_svg(figure, svg_dir: Optional[str]) -> None:
    if svg_dir is None:
        return
    import os

    from .svg import write_figure_svg
    os.makedirs(svg_dir, exist_ok=True)
    path = write_figure_svg(figure, os.path.join(svg_dir, f"{figure.name}.svg"))
    print(f"[wrote {path}]", file=sys.stderr)


def _run_target(target: str, quick: bool, svg_dir: Optional[str] = None) -> None:
    started = time.time()
    if target == "fig6":
        figure = figures.figure6(quick=quick)
        print(figure.render())
        _maybe_svg(figure, svg_dir)
    elif target == "fig7":
        figure = figures.figure7(quick=quick)
        print(figure.render())
        _maybe_svg(figure, svg_dir)
    elif target == "fig8":
        figure = figures.figure8(quick=quick)
        print(figure.render())
        _maybe_svg(figure, svg_dir)
    elif target == "fig9":
        figure = figures.figure9(quick=quick)
        print(figure.render())
        _maybe_svg(figure, svg_dir)
    elif target == "srp":
        print("=== T1: Totem SRP Ethernet saturation (paper §2/§8) ===")
        print(figures.table_srp_saturation())
        print()
    elif target == "claims":
        print("=== T2: §8 in-text numeric claims ===")
        print(figures.table_claims(quick=quick))
        print()
    elif target == "ap":
        print(figures.extension_active_passive(quick=quick).render())
    elif target == "failover":
        for style in (ReplicationStyle.ACTIVE, ReplicationStyle.PASSIVE):
            print(f"=== X3: failover timeline, {style.value} replication ===")
            print(figures.extension_failover_timeline(style=style))
            print()
    elif target == "all":
        fig6 = figures.figure6(quick=quick)
        print(fig6.render())
        _maybe_svg(fig6, svg_dir)
        fig8 = figures.as_bandwidth_view(
            fig6, "fig8", "Figure 8: Totem RRP bandwidth, 4 nodes")
        print(fig8.render())
        _maybe_svg(fig8, svg_dir)
        fig7 = figures.figure7(quick=quick)
        print(fig7.render())
        _maybe_svg(fig7, svg_dir)
        fig9 = figures.as_bandwidth_view(
            fig7, "fig9", "Figure 9: Totem RRP bandwidth, 6 nodes")
        print(fig9.render())
        _maybe_svg(fig9, svg_dir)
        print("=== T1: Totem SRP Ethernet saturation ===")
        print(figures.table_srp_saturation())
        print()
        print("=== T2: §8 in-text numeric claims ===")
        print(figures.table_claims(figure=fig6))
        print()
        print(figures.extension_active_passive(quick=quick).render())
        for style in (ReplicationStyle.ACTIVE, ReplicationStyle.PASSIVE):
            print(f"=== X3: failover timeline, {style.value} replication ===")
            print(figures.extension_failover_timeline(style=style))
            print()
    print(f"[{target} completed in {time.time() - started:.1f}s wall clock]",
          file=sys.stderr)


def _run_gate(args: argparse.Namespace) -> int:
    from ..errors import GateError
    from .gate import run_gate
    try:
        result = run_gate(output=args.output, baseline=args.baseline,
                          enforce=not args.no_gate, quick=args.quick,
                          enable_batching=not args.unbatched)
    except GateError as exc:
        print(f"GATE FAILED: {exc}", file=sys.stderr)
        return 1
    for name, metrics in result["workloads"].items():
        print(f"{name}: {metrics['events_per_sec']:,.0f} events/s  "
              f"{metrics['ops_per_sec']:,.0f} ops/s  "
              f"{metrics['virtual_mbps']:.1f} Mbit/s")
    latency = result["latency"]
    print(f"latency (virtual): p50 {latency['virtual_p50_ms']:.3f} ms  "
          f"p99 {latency['virtual_p99_ms']:.3f} ms")
    if result.get("baseline"):
        print(f"[baseline: {result['baseline']}]", file=sys.stderr)
    if result["regressions"]:
        print("regressions (not enforced, --no-gate):", file=sys.stderr)
        for line in result["regressions"]:
            print(f"  {line}", file=sys.stderr)
    print(f"[wrote {args.output}]", file=sys.stderr)
    return 0


def _run_multiring(args: argparse.Namespace) -> int:
    from ..errors import GateError
    from .multiring import run_multiring
    output = args.output
    if output == "BENCH_pr2.json":
        # The gate's historical default; the multiring document gets its own.
        output = "BENCH_pr8.json"
    try:
        result = run_multiring(output=output, baseline=args.baseline,
                               enforce=not args.no_gate, quick=args.quick)
    except GateError as exc:
        print(f"GATE FAILED: {exc}", file=sys.stderr)
        return 1
    for name, metrics in result["workloads"].items():
        print(f"{name}: {metrics['events_per_sec']:,.0f} events/s  "
              f"{metrics['ops_per_sec']:,.0f} ops/s")
    sweep = result["multiring"]
    for count in sweep["ring_counts"]:
        point = sweep["results"][str(count)]
        print(f"multiring x{count}: "
              f"{point['virtual_ops_per_sec']:,.0f} virtual ops/s  "
              f"{point['ops_per_sec']:,.0f} wall ops/s  "
              f"(scaling {sweep['scaling_vs_1ring'][str(count)]:.2f}x)")
    print(f"aggregate scaling at {sweep['ring_counts'][-1]} rings: "
          f"{sweep['max_scaling']:.2f}x (floor {sweep['scaling_floor']:.1f}x)")
    if result.get("baseline"):
        print(f"[baseline: {result['baseline']}]", file=sys.stderr)
    if result["regressions"]:
        print("regressions (not enforced, --no-gate):", file=sys.stderr)
        for line in result["regressions"]:
            print(f"  {line}", file=sys.stderr)
    print(f"[wrote {output}]", file=sys.stderr)
    return 0


def _run_service(args: argparse.Namespace) -> int:
    from ..errors import GateError
    from .service import run_service
    output = args.output
    if output == "BENCH_pr2.json":
        # The gate's historical default; the service document gets its own.
        output = "BENCH_pr9.json"
    try:
        result = run_service(output=output, baseline=args.baseline,
                             enforce=not args.no_gate, quick=args.quick)
    except GateError as exc:
        print(f"GATE FAILED: {exc}", file=sys.stderr)
        return 1
    for name, metrics in result["workloads"].items():
        print(f"{name}: {metrics['events_per_sec']:,.0f} events/s  "
              f"{metrics['ops_per_sec']:,.0f} ops/s")
    section = result["service"]
    print(f"service: capacity {section['capacity_ops_per_sec']:,.0f} ops/s  "
          f"offered {section['offered_rate']:,.0f} ops/s "
          f"({section['overload_factor']:.0f}x)  "
          f"goodput {section['goodput_ops_per_sec']:,.0f} ops/s "
          f"({section['goodput_ratio']:.1%} of capacity)")
    print(f"service latency (virtual): p50 {section['latency_p50_ms']:.2f} ms  "
          f"p99 {section['latency_p99_ms']:.2f} ms "
          f"(bound {section['p99_bound_ms']:.0f} ms)")
    shed = section["slo"]["shed"]
    shed_text = ", ".join(f"{k}={v}" for k, v in sorted(shed.items())) or "none"
    print(f"service shed: {shed_text}  ring stalls: {section['ring_stalls']}")
    if result.get("baseline"):
        print(f"[baseline: {result['baseline']}]", file=sys.stderr)
    if result["regressions"]:
        print("regressions (not enforced, --no-gate):", file=sys.stderr)
        for line in result["regressions"]:
            print(f"  {line}", file=sys.stderr)
    print(f"[wrote {output}]", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="totem-bench",
        description="Reproduce the Totem RRP paper's evaluation (ICDCS 2002 §8).")
    parser.add_argument("target", choices=TARGETS,
                        help="which figure/table to regenerate")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweep (fewer sizes, shorter runs)")
    parser.add_argument("--svg", metavar="DIR", default=None,
                        help="also write figures as SVG files into DIR")
    gate_group = parser.add_argument_group("gate options")
    gate_group.add_argument("--output", metavar="FILE",
                            default="BENCH_pr2.json",
                            help="gate: where to write the result JSON")
    gate_group.add_argument("--baseline", metavar="FILE", default=None,
                            help="gate: explicit baseline BENCH_*.json "
                                 "(default: newest sibling)")
    gate_group.add_argument("--no-gate", action="store_true",
                            help="gate: measure and report but never fail "
                                 "on regression")
    gate_group.add_argument("--unbatched", action="store_true",
                            help="gate: run the throughput workloads with "
                                 "message batching disabled (the pre-batch "
                                 "hot path)")
    prof_group = parser.add_argument_group("profile options")
    prof_group.add_argument("--workload", choices=("fig6", "service", "all"),
                            default="all",
                            help="profile: which workload(s) to profile")
    prof_group.add_argument("--top", type=int, default=25, metavar="N",
                            help="profile: rows per table (cumulative and "
                                 "internal time)")
    prof_group.add_argument("--pstats-out", metavar="FILE", default=None,
                            help="profile: dump raw pstats data to FILE")
    args = parser.parse_args(argv)
    if args.target == "profile":
        from .profile import main_profile
        return main_profile(args)
    if args.target == "gate":
        return _run_gate(args)
    if args.target == "multiring":
        return _run_multiring(args)
    if args.target == "service":
        return _run_service(args)
    _run_target(args.target, quick=args.quick, svg_dir=args.svg)
    return 0


if __name__ == "__main__":
    sys.exit(main())
