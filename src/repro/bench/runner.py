"""Single-configuration throughput measurement.

Builds a cluster, saturates it (paper §8: every node sends as much as flow
control permits), lets it warm up, then measures delivered messages and
payload bytes over a virtual-time window at a reference node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..api.cluster import SimCluster
from ..config import ClusterConfig, LanConfig, TotemConfig
from ..types import ReplicationStyle
from .workload import SaturatingWorkload


@dataclass(frozen=True)
class ThroughputResult:
    """Steady-state throughput of one (style, nodes, message size) point."""

    style: ReplicationStyle
    num_nodes: int
    num_networks: int
    message_size: int
    duration: float
    messages_delivered: int
    payload_bytes: int
    #: Per-network medium utilisation over the measurement window.
    network_utilization: List[float]
    #: Mean per-node CPU utilisation over the measurement window.
    cpu_utilization: float
    retransmission_requests: int
    token_timer_expiries: int

    @property
    def msgs_per_sec(self) -> float:
        return self.messages_delivered / self.duration if self.duration else 0.0

    @property
    def kbytes_per_sec(self) -> float:
        return self.payload_bytes / self.duration / 1024.0 if self.duration else 0.0

    def row(self) -> str:
        nets = "/".join(f"{u:.0%}" for u in self.network_utilization)
        return (f"{self.message_size:>7d}B  {self.msgs_per_sec:>10.0f} msg/s  "
                f"{self.kbytes_per_sec:>10.0f} KB/s  net[{nets}]  "
                f"cpu {self.cpu_utilization:.0%}")


def build_config(style: ReplicationStyle, num_nodes: int,
                 lan: Optional[LanConfig] = None,
                 seed: int = 1,
                 num_networks: Optional[int] = None,
                 active_passive_k: int = 2,
                 enable_batching: bool = False) -> ClusterConfig:
    """The standard benchmark cluster for a replication style.

    ``enable_batching`` stays off for the figure sweeps (they reproduce the
    paper's per-frame testbed); the perf gate turns it on to measure the
    batched hot path.
    """
    if num_networks is None:
        num_networks = {ReplicationStyle.NONE: 1,
                        ReplicationStyle.ACTIVE: 2,
                        ReplicationStyle.PASSIVE: 2,
                        ReplicationStyle.ACTIVE_PASSIVE: 3}[style]
    totem = TotemConfig(replication=style, num_networks=num_networks,
                        active_passive_k=active_passive_k,
                        enable_batching=enable_batching)
    return ClusterConfig(num_nodes=num_nodes, totem=totem,
                         lan=lan or LanConfig(), seed=seed)


def run_throughput(style: ReplicationStyle, num_nodes: int, message_size: int,
                   duration: float = 0.5, warmup: float = 0.2,
                   lan: Optional[LanConfig] = None, seed: int = 1,
                   num_networks: Optional[int] = None,
                   active_passive_k: int = 2) -> ThroughputResult:
    """Measure steady-state throughput for one configuration point."""
    config = build_config(style, num_nodes, lan=lan, seed=seed,
                          num_networks=num_networks,
                          active_passive_k=active_passive_k)
    cluster = SimCluster(config)
    cluster.start()
    workload = SaturatingWorkload(cluster, message_size)
    workload.start()
    cluster.run_for(warmup)

    reference = cluster.nodes[min(cluster.nodes)]
    start_msgs = reference.srp.stats.msgs_delivered
    start_bytes = reference.srp.stats.bytes_delivered
    start_busy = [lan_.stats.busy_time for lan_ in cluster.lans]
    start_cpu = [node.cpu.stats.busy_time for node in cluster.nodes.values()]
    start_rtr = sum(n.srp.stats.retransmission_requests
                    for n in cluster.nodes.values())
    start_exp = sum(n.rrp.stats.token_timer_expiries
                    for n in cluster.nodes.values())

    cluster.run_for(duration)

    delivered = reference.srp.stats.msgs_delivered - start_msgs
    payload = reference.srp.stats.bytes_delivered - start_bytes
    net_util = [
        (lan_.stats.busy_time - busy0) / duration
        for lan_, busy0 in zip(cluster.lans, start_busy)
    ]
    cpu_util = sum(
        (node.cpu.stats.busy_time - cpu0) / duration
        for node, cpu0 in zip(cluster.nodes.values(), start_cpu)
    ) / len(cluster.nodes)
    workload.stop()
    return ThroughputResult(
        style=style,
        num_nodes=num_nodes,
        num_networks=config.totem.num_networks,
        message_size=message_size,
        duration=duration,
        messages_delivered=delivered,
        payload_bytes=payload,
        network_utilization=net_util,
        cpu_utilization=cpu_util,
        retransmission_requests=(
            sum(n.srp.stats.retransmission_requests
                for n in cluster.nodes.values()) - start_rtr),
        token_timer_expiries=(
            sum(n.rrp.stats.token_timer_expiries
                for n in cluster.nodes.values()) - start_exp),
    )
