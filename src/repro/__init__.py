"""Reproduction of *The Totem Redundant Ring Protocol* (ICDCS 2002).

A group communication system providing reliable, totally ordered message
delivery over **multiple redundant local-area networks**, so that partial or
total network failures stay transparent to the application.

Quickstart::

    from repro import ClusterConfig, SimCluster, TotemConfig, ReplicationStyle

    config = ClusterConfig(
        num_nodes=4,
        totem=TotemConfig(replication=ReplicationStyle.ACTIVE, num_networks=2))
    cluster = SimCluster(config)
    cluster.start()
    cluster.nodes[1].submit(b"hello, ring")
    cluster.run_for(0.05)
    print(cluster.nodes[3].delivered[0].payload)

See DESIGN.md for the architecture and EXPERIMENTS.md for the paper
reproduction results.
"""

from ._version import __version__
from .config import ClusterConfig, LanConfig, TotemConfig
from .errors import (
    ChecksumError,
    CodecError,
    ConfigError,
    NotMemberError,
    SendQueueFullError,
    SimulationError,
    TotemError,
    TransportError,
)
from .api import SimCluster, TotemNode
from .net.faults import FaultPlan
from .types import (
    ConfigurationChange,
    DeliveredMessage,
    DeliveryLog,
    FaultKind,
    FaultReport,
    Membership,
    NodeId,
    ReplicationStyle,
    RingId,
)

__all__ = [
    "__version__",
    "TotemConfig",
    "LanConfig",
    "ClusterConfig",
    "SimCluster",
    "TotemNode",
    "FaultPlan",
    "ReplicationStyle",
    "Membership",
    "RingId",
    "NodeId",
    "DeliveredMessage",
    "ConfigurationChange",
    "DeliveryLog",
    "FaultReport",
    "FaultKind",
    "TotemError",
    "ConfigError",
    "CodecError",
    "ChecksumError",
    "NotMemberError",
    "SendQueueFullError",
    "SimulationError",
    "TransportError",
]

# Arm the optional compiled core (no-op unless `python tools/build_accel.py`
# was run and REPRO_PURE is unset).  Last, so every module the C core binds
# against is fully loaded.
from .core import accel as _accel

_accel.activate()
