"""Version of the Totem RRP reproduction package."""

__version__ = "1.0.0"
