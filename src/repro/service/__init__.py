"""The production service facade over the Cluster API.

Admission control, backpressure-aware load shedding, weighted per-client
fairness, and circuit-broken cross-shard reads for a replicated KV /
pub-sub service running on a single Totem ring or a sharded multi-ring
cluster.  See docs/SERVICE.md for the architecture and shedding policy.
"""

from .admission import FairAdmissionQueue, TokenBucket
from .backpressure import DEGRADE, OK, SHED, RingPressureMonitor
from .breaker import CircuitBreaker, DeadlineBudget
from .facade import SLO_LATENCY_BUCKETS, ServiceConfig, ServiceFacade
from .types import (
    Admitted,
    Overload,
    ReadResult,
    Request,
    Response,
    Shed,
    ShedReason,
    decode_body,
    decode_envelope,
    encode_delete,
    encode_envelope,
    encode_publish,
    encode_set,
)

__all__ = [
    "Admitted",
    "CircuitBreaker",
    "DEGRADE",
    "DeadlineBudget",
    "FairAdmissionQueue",
    "OK",
    "Overload",
    "ReadResult",
    "Request",
    "Response",
    "RingPressureMonitor",
    "SHED",
    "SLO_LATENCY_BUCKETS",
    "ServiceConfig",
    "ServiceFacade",
    "Shed",
    "ShedReason",
    "TokenBucket",
    "decode_body",
    "decode_envelope",
    "encode_delete",
    "encode_envelope",
    "encode_publish",
    "encode_set",
]
