"""Flow-control-aware backpressure: watch the SRP backlog, shed early.

Ring Paxos's lesson (Marandi et al.) is that a ring sustains its peak
only while the pipeline stays inside the flow-control window; Stretching
Multi-Ring Paxos adds that latency SLOs collapse once a ring saturates.
The shedder therefore watches each ring's *gateway* SRP send queue — the
facade's only injection point, so its depth is the facade's share of the
ring backlog — against an inflight budget expressed in flow-control
windows, and degrades/sheds **before** the queue reaches the point where
a submit would fail (a flow-window stall).

States, per ring group:

* ``OK``        — depth below ``degrade_ratio`` of the budget;
* ``DEGRADE``   — depth in the degrade band: reads may be served stale,
  writes still admitted;
* ``SHED``      — depth at/above ``shed_ratio``: new writes for this
  ring are rejected with :class:`~repro.service.types.Overload` until
  the ring drains.

The monitor is read-only and deterministic: it looks at queue depths at
the moment it is asked, with no timers or smoothing of its own.
"""

from __future__ import annotations

from typing import Dict, Mapping

OK = "ok"
DEGRADE = "degrade"
SHED = "shed"


class RingPressureMonitor:
    """Backlog-window pressure for the gateway engine of each ring group.

    ``engines`` maps ring group -> the gateway's :class:`TotemSrp` for
    that group.  ``inflight_budget`` is the maximum backlog (messages)
    the facade lets the gateway queue hold; it defaults to a few
    flow-control windows — enough to keep the ring busy across token
    rotations, small enough that queued requests clear within a handful
    of rotations (bounded latency).
    """

    def __init__(self, engines: Mapping[int, object],
                 inflight_budget: int,
                 degrade_ratio: float = 0.5,
                 shed_ratio: float = 0.9) -> None:
        if inflight_budget < 1:
            raise ValueError("inflight budget must be >= 1")
        if not 0.0 < degrade_ratio <= shed_ratio <= 1.0:
            raise ValueError(
                "need 0 < degrade_ratio <= shed_ratio <= 1")
        self._engines = dict(engines)
        self.inflight_budget = inflight_budget
        self.degrade_ratio = degrade_ratio
        self.shed_ratio = shed_ratio

    def rebind(self, group: int, engine: object) -> None:
        """Point ``group`` at a fresh engine (gateway restart)."""
        self._engines[group] = engine

    def depth(self, group: int) -> int:
        """Current gateway send-queue depth for ``group``."""
        return len(self._engines[group].send_queue)

    def pressure(self, group: int) -> float:
        """Backlog occupancy in [0, ...]: depth / inflight budget."""
        return self.depth(group) / self.inflight_budget

    def state(self, group: int) -> str:
        pressure = self.pressure(group)
        if pressure >= self.shed_ratio:
            return SHED
        if pressure >= self.degrade_ratio:
            return DEGRADE
        return OK

    def has_headroom(self, group: int) -> bool:
        """Whether one more submit stays inside the inflight budget.

        This is the stall guard: the budget is strictly below the SRP
        send-queue capacity, so a submit made with headroom can never
        hit a full queue.
        """
        return self.depth(group) < self.inflight_budget

    def snapshot(self) -> Dict[int, float]:
        """Pressure per group, in group order (for metrics/exports)."""
        return {group: self.pressure(group)
                for group in sorted(self._engines)}
