"""Admission control: token bucket + bounded weighted-fair queue.

Two deterministic building blocks, both driven purely by the virtual
clock value callers pass in (no wall clock, no hidden state):

* :class:`TokenBucket` — classic rate limiting.  Tokens refill
  continuously at ``rate`` per second up to ``burst``; a request costs
  one token.  ``next_available`` tells a shed client when retrying could
  succeed.
* :class:`FairAdmissionQueue` — a bounded admission queue with
  per-client FIFO lanes, deadline-aware expiry, and deficit-round-robin
  drain weighted by each request's ``weight``.  One heavy client fills
  only its own lane; the drain cycles lanes in deterministic (arrival,
  client-id) order, so a light client is never starved behind a heavy
  one (the per-client weighted-fairness requirement).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigError
from .types import Request


class TokenBucket:
    """Continuous-refill token bucket on the virtual clock."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigError("token bucket rate must be positive")
        if burst < 1:
            raise ConfigError("token bucket burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last) * self.rate)
            self._last = now

    @property
    def tokens(self) -> float:
        """Tokens as of the last refill (diagnostic)."""
        return self._tokens

    def peek(self, now: float) -> bool:
        """Whether one token is available at ``now`` (no consumption)."""
        self._refill(now)
        return self._tokens >= 1.0

    def try_take(self, now: float) -> bool:
        """Consume one token if available."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def next_available(self, now: float) -> float:
        """Virtual seconds from ``now`` until one token will exist."""
        self._refill(now)
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


class _Lane:
    """One client's FIFO lane plus its deficit-round-robin credit."""

    __slots__ = ("queue", "deficit", "weight")

    def __init__(self, weight: int) -> None:
        self.queue: Deque[Request] = deque()
        self.deficit = 0
        self.weight = weight


class FairAdmissionQueue:
    """Bounded, deadline-aware, weighted-fair admission queue.

    ``capacity`` bounds the total queued requests; ``per_client_limit``
    bounds one client's lane so a single aggressive client cannot own
    the whole queue.  :meth:`pop` implements deficit round robin: each
    pass over the active lanes adds ``weight`` credits to a lane and
    drains requests while credit lasts, so over time clients receive
    service proportional to their weights regardless of arrival rates.
    """

    def __init__(self, capacity: int, per_client_limit: Optional[int] = None) -> None:
        if capacity < 1:
            raise ConfigError("admission queue capacity must be >= 1")
        if per_client_limit is not None and per_client_limit < 1:
            raise ConfigError("per-client limit must be >= 1")
        self.capacity = capacity
        self.per_client_limit = per_client_limit or capacity
        self._lanes: Dict[int, _Lane] = {}
        #: Round-robin order over active clients (stable, arrival order).
        self._active: Deque[int] = deque()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size >= self.capacity

    def depth_of(self, client: int) -> int:
        lane = self._lanes.get(client)
        return len(lane.queue) if lane is not None else 0

    def offer(self, request: Request) -> bool:
        """Queue ``request``; False when the queue (or lane) is full."""
        if self._size >= self.capacity:
            return False
        lane = self._lanes.get(request.client)
        if lane is None:
            lane = _Lane(max(1, request.weight))
            self._lanes[request.client] = lane
        if len(lane.queue) >= self.per_client_limit:
            return False
        lane.weight = max(1, request.weight)
        if not lane.queue:
            self._active.append(request.client)
        lane.queue.append(request)
        self._size += 1
        return True

    def pop(self, now: float) -> Tuple[Optional[Request], List[Request]]:
        """Next request by weighted fairness, plus any expired ones.

        Requests whose deadline passed are swept into the second return
        value (the caller sheds them as ``DEADLINE_EXPIRED``); the first
        value is the next live request, or None when the queue is empty.
        """
        expired: List[Request] = []
        while self._active:
            client = self._active[0]
            lane = self._lanes[client]
            # Drop expired heads before spending credit on them.
            while lane.queue and self._expired(lane.queue[0], now):
                expired.append(lane.queue.popleft())
                self._size -= 1
            if not lane.queue:
                self._active.popleft()
                lane.deficit = 0
                continue
            if lane.deficit <= 0:
                lane.deficit += lane.weight
            lane.deficit -= 1
            request = lane.queue.popleft()
            self._size -= 1
            # Rotate the lane to the back when its credit is spent so the
            # next pop serves the next client (deficit round robin).
            self._active.popleft()
            if lane.queue:
                if lane.deficit > 0:
                    self._active.appendleft(client)
                else:
                    self._active.append(client)
                    lane.deficit = 0
            else:
                lane.deficit = 0
            return request, expired
        return None, expired

    def requeue_front(self, request: Request) -> None:
        """Return a popped request to the head of its lane.

        Used when the drain pump pops a request and then finds its ring
        without headroom: the request keeps its place at the front so
        fairness and per-client FIFO order are preserved.
        """
        lane = self._lanes.get(request.client)
        if lane is None:
            lane = _Lane(max(1, request.weight))
            self._lanes[request.client] = lane
        if not lane.queue and request.client not in self._active:
            self._active.appendleft(request.client)
        elif self._active and self._active[0] != request.client:
            # Make sure this client's lane is served first next time.
            try:
                self._active.remove(request.client)
            except ValueError:
                pass
            self._active.appendleft(request.client)
        lane.queue.appendleft(request)
        self._size += 1

    def sweep_expired(self, now: float) -> List[Request]:
        """Remove every expired request (deadline-aware queue expiry)."""
        expired: List[Request] = []
        for client in list(self._active):
            lane = self._lanes[client]
            kept: Deque[Request] = deque()
            for request in lane.queue:
                if self._expired(request, now):
                    expired.append(request)
                    self._size -= 1
                else:
                    kept.append(request)
            lane.queue = kept
        if expired:
            self._active = deque(
                c for c in self._active if self._lanes[c].queue)
        return expired

    def drain_all(self) -> Iterator[Request]:
        """Yield and remove every queued request (shutdown path)."""
        while self._active:
            client = self._active.popleft()
            lane = self._lanes[client]
            while lane.queue:
                self._size -= 1
                yield lane.queue.popleft()
            lane.deficit = 0

    @staticmethod
    def _expired(request: Request, now: float) -> bool:
        return request.deadline is not None and now > request.deadline
