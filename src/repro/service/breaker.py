"""Circuit breaker and deadline budget for cross-shard reads.

The classic three-state breaker (closed -> open -> half-open), driven by
the virtual clock the caller passes in — no wall clock, fully
deterministic.  The facade keeps one breaker per shard ring; a shard
whose ring has lost quorum or whose submits fail trips its breaker, and
reads against it fail fast (served stale from the local replica) instead
of piling latency onto an unhealthy shard.

:class:`DeadlineBudget` is the matching deadline wrapper: a scatter
phase over many shards charges each shard's modelled read cost against
one budget, and shards past the budget are not attempted at all.
"""

from __future__ import annotations

from ..errors import ConfigError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Numeric encoding for the breaker-state gauge (Prometheus-friendly).
STATE_VALUES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """Three-state breaker on consecutive failures.

    ``failure_threshold`` consecutive failures open the breaker; after
    ``reset_timeout`` virtual seconds it half-opens and lets up to
    ``half_open_probes`` trial calls through — one success closes it,
    one failure re-opens it (and restarts the timeout).
    """

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout: float = 0.1,
                 half_open_probes: int = 1) -> None:
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ConfigError("reset_timeout must be positive")
        if half_open_probes < 1:
            raise ConfigError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_left = 0

    def state(self, now: float) -> str:
        """Current state, advancing open -> half-open on timeout."""
        if (self._state == OPEN
                and now - self._opened_at >= self.reset_timeout):
            self._state = HALF_OPEN
            self._probes_left = self.half_open_probes
        return self._state

    def allow(self, now: float) -> bool:
        """Whether a call may proceed (consumes a half-open probe)."""
        state = self.state(now)
        if state == CLOSED:
            return True
        if state == HALF_OPEN and self._probes_left > 0:
            self._probes_left -= 1
            return True
        return False

    def record_success(self, now: float) -> None:
        self._failures = 0
        if self.state(now) == HALF_OPEN:
            self._state = CLOSED

    def record_failure(self, now: float) -> None:
        state = self.state(now)
        if state == HALF_OPEN:
            self._trip(now)
            return
        self._failures += 1
        if state == CLOSED and self._failures >= self.failure_threshold:
            self._trip(now)

    def _trip(self, now: float) -> None:
        self._state = OPEN
        self._opened_at = now
        self._failures = 0
        self._probes_left = 0

    def value(self, now: float) -> float:
        """Gauge encoding of :meth:`state` (0 closed, 1 half, 2 open)."""
        return STATE_VALUES[self.state(now)]


class DeadlineBudget:
    """A virtual-time budget charged by modelled per-shard read costs."""

    def __init__(self, start: float, timeout: float) -> None:
        if timeout <= 0:
            raise ConfigError("deadline timeout must be positive")
        self.deadline = start + timeout
        self._elapsed = start

    @property
    def now(self) -> float:
        """The budget's current charged position."""
        return self._elapsed

    @property
    def expired(self) -> bool:
        return self._elapsed > self.deadline

    def charge(self, cost: float) -> bool:
        """Spend ``cost`` seconds; False when the budget is exhausted."""
        self._elapsed += cost
        return not self.expired
