"""The production service facade: a replicated KV / pub-sub front-end.

:class:`ServiceFacade` turns a :class:`~repro.api.cluster.SimCluster` or
:class:`~repro.multiring.MultiRingCluster` into a client-facing service
with the protections a million-user front-end needs (see
docs/SERVICE.md):

* **Admission control** — a token bucket caps the sustained admit rate
  at what the ring(s) can absorb, and a bounded admission queue with
  deadline-aware expiry absorbs bursts (``repro.service.admission``).
* **Backpressure** — a flow-control-aware shedder watches each ring's
  gateway SRP send queue against an inflight budget of flow-control
  windows and rejects writes with typed
  :class:`~repro.service.types.Overload` responses *before* the ring
  would stall (``repro.service.backpressure``).
* **Weighted fairness** — deficit-round-robin drain over per-client
  lanes, so one heavy client cannot starve the rest.
* **Circuit breakers + deadlines** — cross-shard reads fail fast against
  unhealthy shards and stop scattering once their deadline budget is
  spent (``repro.service.breaker``).

Every decision is appended to a byte-stable decision log and mirrored
into :mod:`repro.obs` metrics labelled with the service name, so SLO
dashboards and the determinism tests read the same source of truth.
The facade is a pure function of the cluster's seed and the client
schedule: same inputs, byte-identical decision and delivered-op logs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..obs.metrics import MetricRegistry
from ..types import NodeId
from .admission import FairAdmissionQueue, TokenBucket
from .backpressure import RingPressureMonitor, SHED
from .breaker import CircuitBreaker, DeadlineBudget
from .types import (
    OP_DEL,
    OP_PUB,
    OP_SET,
    Admitted,
    Overload,
    ReadResult,
    Request,
    Response,
    Shed,
    ShedReason,
    decode_body,
    decode_envelope,
    encode_delete,
    encode_envelope,
    encode_publish,
    encode_set,
)

#: Decision callback: ``fn(request, response)``.
DecisionFn = Callable[[Request, Response], None]
#: Completion callback: ``fn(client, uid, virtual_latency)``.
CompleteFn = Callable[[int, int, float], None]
#: Pub-sub subscriber: ``fn(topic, data)``.
SubscriberFn = Callable[[bytes, bytes], None]

#: Latency buckets for the virtual request-latency SLO histogram:
#: 0.5 ms to 2 s, log-spaced around typical token-rotation multiples.
SLO_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.0)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one service facade (all times virtual seconds)."""

    #: Service name: the ``service`` label on every SLO metric.
    name: str = "kv"
    #: Physical member whose engines the facade submits through.
    gateway: NodeId = 1
    #: Token-bucket sustained admit rate (requests / virtual second).
    rate: float = 20_000.0
    #: Token-bucket burst allowance (requests).
    burst: float = 64.0
    #: Bounded admission queue capacity (requests, all clients).
    queue_capacity: int = 1024
    #: Per-client lane bound; None = ``queue_capacity`` (no lane bound).
    per_client_limit: Optional[int] = None
    #: Queue drain cadence when the bucket or ring is the limiter.
    drain_interval: float = 0.0005
    #: Inflight budget in flow-control windows: the shedder lets the
    #: gateway send queue hold at most ``window_size * inflight_windows``
    #: messages (clamped below the queue capacity so a guarded submit
    #: can never stall).
    inflight_windows: float = 4.0
    #: Pressure band edges (fractions of the inflight budget).
    degrade_ratio: float = 0.5
    shed_ratio: float = 0.9
    #: When False, an empty token bucket sheds arrivals RATE_LIMITED
    #: instead of queueing them (fail-fast admission).
    queue_when_limited: bool = True
    #: Default relative deadline stamped on requests without one;
    #: None = no deadline.
    default_deadline: Optional[float] = None
    #: Circuit breaker: consecutive failures to open, reset timeout.
    breaker_failures: int = 3
    breaker_reset: float = 0.05
    #: Modelled cost of one shard read (charged to the deadline budget).
    read_cost: float = 0.0002
    #: Default cross-shard read deadline budget.
    read_timeout: float = 0.01

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst < 1:
            raise ConfigError("service rate must be > 0 and burst >= 1")
        if self.queue_capacity < 1:
            raise ConfigError("service queue_capacity must be >= 1")
        if self.drain_interval <= 0:
            raise ConfigError("service drain_interval must be positive")
        if self.inflight_windows <= 0:
            raise ConfigError("service inflight_windows must be positive")
        if not 0.0 < self.degrade_ratio <= self.shed_ratio <= 1.0:
            raise ConfigError(
                "need 0 < degrade_ratio <= shed_ratio <= 1")


class _Deliver:
    """Per-member delivery hook (``__slots__`` callable: deepcopy-safe)."""

    __slots__ = ("_facade", "_member")

    def __init__(self, facade: "ServiceFacade", member: NodeId) -> None:
        self._facade = facade
        self._member = member

    def __call__(self, message) -> None:
        self._facade._on_apply(self._member, 0, message.payload)


class _AppHandler:
    """Multi-ring app handler (``handler(group, message, body)``)."""

    __slots__ = ("_facade", "_member")

    def __init__(self, facade: "ServiceFacade", member: NodeId) -> None:
        self._facade = facade
        self._member = member

    def __call__(self, group: int, message, body: bytes) -> None:
        self._facade._on_apply(self._member, group, body)


class _SingleRingPort:
    """Adapter: one classic Totem ring behind the facade."""

    multiring = False

    def __init__(self, cluster, gateway: NodeId) -> None:
        if gateway not in cluster.nodes:
            raise ConfigError(f"gateway node {gateway} not in cluster")
        self.cluster = cluster
        self.gateway = gateway
        self.groups: Tuple[int, ...] = (0,)
        self.members = tuple(sorted(cluster.nodes))

    def ring_for(self, key: bytes) -> int:
        return 0

    def engine(self, group: int):
        return self.cluster.nodes[self.gateway].srp

    def submit(self, group: int, payload: bytes) -> bool:
        return self.cluster.nodes[self.gateway].try_submit(payload)

    def attach(self, facade: "ServiceFacade") -> None:
        for member in self.members:
            self.cluster.nodes[member].set_user_callbacks(
                on_deliver=_Deliver(facade, member))

    def rebind(self, facade: "ServiceFacade", node) -> None:
        """Re-hook a restarted incarnation (same member id, fresh node)."""
        node.set_user_callbacks(on_deliver=_Deliver(facade, node.node_id))


class _MultiRingPort:
    """Adapter: a sharded multi-ring cluster behind the facade."""

    multiring = True

    def __init__(self, cluster, gateway: NodeId) -> None:
        from ..multiring.config import group_addr
        self._group_addr = group_addr
        if gateway < 1 or gateway > cluster.config.num_nodes:
            raise ConfigError(f"gateway member {gateway} out of range")
        self.cluster = cluster
        self.gateway = gateway
        self.groups = tuple(range(cluster.config.num_rings))
        self.members = tuple(range(1, cluster.config.num_nodes + 1))

    def ring_for(self, key: bytes) -> int:
        return self.cluster.ring_for(key)

    def engine(self, group: int):
        return self.cluster.nodes[self._group_addr(group, self.gateway)].srp

    def submit(self, group: int, payload: bytes) -> bool:
        return self.cluster.submit_to_group(group, payload,
                                            sender=self.gateway)

    def attach(self, facade: "ServiceFacade") -> None:
        for member in self.members:
            self.cluster.set_app_handler(member, _AppHandler(facade, member))

    def rebind(self, facade: "ServiceFacade", node) -> None:
        raise ConfigError("multiring clusters do not restart members")


class ServiceFacade:
    """Admission-controlled replicated KV / pub-sub over a cluster."""

    def __init__(self, cluster, config: Optional[ServiceConfig] = None,
                 registry: Optional[MetricRegistry] = None) -> None:
        self.config = config or ServiceConfig()
        self.cluster = cluster
        gateway = self.config.gateway
        if hasattr(cluster, "ring_for"):
            self.port: Any = _MultiRingPort(cluster, gateway)
        else:
            self.port = _SingleRingPort(cluster, gateway)
        self.scheduler = cluster.scheduler
        totem = cluster.config.totem
        budget = max(1, int(totem.window_size * self.config.inflight_windows))
        # The stall guard: the budget must sit strictly below the SRP
        # queue capacity or a guarded submit could still find it full.
        budget = min(budget, totem.send_queue_capacity - 1)
        self.bucket = TokenBucket(self.config.rate, self.config.burst)
        self.queue = FairAdmissionQueue(self.config.queue_capacity,
                                        self.config.per_client_limit)
        self.monitor = RingPressureMonitor(
            {g: self.port.engine(g) for g in self.port.groups},
            inflight_budget=budget,
            degrade_ratio=self.config.degrade_ratio,
            shed_ratio=self.config.shed_ratio)
        self.breakers: Dict[int, CircuitBreaker] = {
            g: CircuitBreaker(self.config.breaker_failures,
                              self.config.breaker_reset)
            for g in self.port.groups}

        #: Per-member replicated KV state (converges across members).
        self.stores: Dict[NodeId, Dict[bytes, bytes]] = {
            m: {} for m in self.port.members}
        self._subscribers: Dict[NodeId, Dict[bytes, List[SubscriberFn]]] = {}
        self._applied: Dict[NodeId, List[Tuple[int, int, int]]] = {
            m: [] for m in self.port.members}
        self._decisions: List[str] = []
        self._inflight: Dict[Tuple[int, int], float] = {}
        self._next_uid: Dict[int, int] = {}
        self._pump_timer = None
        self._on_decision: Optional[DecisionFn] = None
        self._on_complete: Optional[CompleteFn] = None

        obs = getattr(cluster, "obs", None)
        self.registry = registry if registry is not None else (
            obs.registry if obs is not None else MetricRegistry())
        self._init_metrics()
        self.port.attach(self)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------

    def _init_metrics(self) -> None:
        labels = {"service": self.config.name}
        reg = self.registry
        self.m_requests = reg.counter(
            "service_requests_total", labels,
            help="Client requests offered to the admission pipeline")
        self.m_admitted = reg.counter(
            "service_admitted_total", labels,
            help="Requests admitted into the replicated log")
        self.m_completed = reg.counter(
            "service_completed_total", labels,
            help="Admitted requests applied at the gateway replica")
        self.m_stalls = reg.counter(
            "service_ring_stalls_total", labels,
            help="Submits refused by a ring send queue (flow-window "
                 "stalls; the shedder's job is to keep this at zero)")
        self.m_shed = {
            reason: reg.counter(
                "service_shed_total", {**labels, "reason": reason.value},
                help="Requests shed, by typed reason")
            for reason in ShedReason}
        self.m_queue_depth = reg.gauge(
            "service_queue_depth", labels,
            help="Admission queue depth (requests waiting)")
        self.m_latency = reg.histogram(
            "service_latency_seconds", labels,
            help="Virtual latency: request arrival to gateway apply",
            bounds=SLO_LATENCY_BUCKETS)
        self.m_pressure = {
            g: reg.gauge("service_pressure",
                         {**labels, "group": str(g)},
                         help="Ring backlog occupancy (0..1+ of the "
                              "inflight budget)")
            for g in self.port.groups}
        self.m_breaker = {
            g: reg.gauge("service_breaker_state",
                         {**labels, "group": str(g)},
                         help="Shard breaker: 0 closed, 1 half-open, 2 open")
            for g in self.port.groups}
        self.m_reads = reg.counter(
            "service_reads_total", labels,
            help="Keys read through the cross-shard read path")
        self.m_reads_degraded = reg.counter(
            "service_reads_degraded_total", labels,
            help="Reads served stale/failed (breaker open, unhealthy "
                 "shard, or deadline exhausted)")

    def _update_gauges(self) -> None:
        self.m_queue_depth.set(len(self.queue))
        for group in self.port.groups:
            self.m_pressure[group].set(round(self.monitor.pressure(group), 6))

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------

    def on_decision(self, fn: Optional[DecisionFn]) -> None:
        """Install the decision callback (queued admits/sheds arrive here)."""
        self._on_decision = fn

    def on_complete(self, fn: Optional[CompleteFn]) -> None:
        """Install the completion callback (gateway apply of admits)."""
        self._on_complete = fn

    def set(self, client: int, key: bytes, value: bytes,
            uid: Optional[int] = None, deadline: Optional[float] = None,
            weight: int = 1) -> Optional[Response]:
        """Replicate ``key = value`` for ``client``; see :meth:`submit`."""
        return self.submit(self.make_request(
            client, key, encode_set(key, value), uid=uid,
            deadline=deadline, weight=weight))

    def delete(self, client: int, key: bytes,
               uid: Optional[int] = None, deadline: Optional[float] = None,
               weight: int = 1) -> Optional[Response]:
        return self.submit(self.make_request(
            client, key, encode_delete(key), uid=uid,
            deadline=deadline, weight=weight))

    def publish(self, client: int, topic: bytes, data: bytes,
                uid: Optional[int] = None, deadline: Optional[float] = None,
                weight: int = 1) -> Optional[Response]:
        """Publish ``data`` on ``topic`` (delivered to every subscriber
        at every member, in the ring's total order)."""
        return self.submit(self.make_request(
            client, topic, encode_publish(topic, data), uid=uid,
            deadline=deadline, weight=weight))

    def subscribe(self, member: NodeId, topic: bytes,
                  fn: SubscriberFn) -> None:
        """Subscribe ``fn`` to ``topic`` publications applied at ``member``."""
        if member not in self.stores:
            raise ConfigError(f"unknown member {member}")
        self._subscribers.setdefault(member, {}).setdefault(
            topic, []).append(fn)

    def make_request(self, client: int, key: bytes, body: bytes,
                     uid: Optional[int] = None,
                     deadline: Optional[float] = None,
                     weight: int = 1) -> Request:
        """Build a request, auto-assigning the client's next uid."""
        if uid is None:
            uid = self._next_uid.get(client, 0) + 1
        self._next_uid[client] = max(uid, self._next_uid.get(client, 0))
        now = self.scheduler.now()
        if deadline is None and self.config.default_deadline is not None:
            deadline = now + self.config.default_deadline
        return Request(client=client, uid=uid, key=key, body=body,
                       deadline=deadline, weight=weight, arrival=now)

    def submit(self, request: Request) -> Optional[Response]:
        """Run one request through the admission pipeline.

        Returns the decision when it is made synchronously (immediate
        admit or shed); returns None when the request was queued — its
        decision arrives later through the :meth:`on_decision` callback.
        """
        now = self.scheduler.now()
        if request.arrival == 0.0 and now != 0.0:
            request = replace(request, arrival=now)
        self.m_requests.inc()
        if request.deadline is not None and now > request.deadline:
            return self._shed(request, ShedReason.DEADLINE_EXPIRED)
        group = self.port.ring_for(request.key)
        if self.monitor.state(group) == SHED:
            # The flow-control-aware shedder: reject before the backlog
            # window fills rather than after the ring stalls.
            return self._shed(request, ShedReason.BACKPRESSURE,
                              retry_after=self.config.drain_interval,
                              overload=True)
        have_token = self.bucket.peek(now)
        if not have_token and not self.config.queue_when_limited:
            return self._shed(request, ShedReason.RATE_LIMITED,
                              retry_after=self.bucket.next_available(now),
                              overload=True)
        if (have_token and not len(self.queue)
                and self.monitor.has_headroom(group)):
            self.bucket.try_take(now)
            return self._admit(request, group, now)
        if not self.queue.offer(request):
            reason = (ShedReason.QUEUE_FULL if have_token
                      else ShedReason.RATE_LIMITED)
            return self._shed(request, reason,
                              retry_after=self.bucket.next_available(now)
                              or self.config.drain_interval,
                              overload=True)
        self._update_gauges()
        self._ensure_pump()
        return None

    # ------------------------------------------------------------------
    # drain pump
    # ------------------------------------------------------------------

    def _ensure_pump(self, delay: Optional[float] = None) -> None:
        if self._pump_timer is None and len(self.queue):
            self._pump_timer = self.scheduler.call_after(
                delay if delay is not None else self.config.drain_interval,
                self._pump)

    def _pump(self) -> None:
        self._pump_timer = None
        now = self.scheduler.now()
        for request in self.queue.sweep_expired(now):
            self._shed(request, ShedReason.DEADLINE_EXPIRED)
        while len(self.queue):
            if not self.bucket.peek(now):
                self._update_gauges()
                self._ensure_pump(max(self.bucket.next_available(now),
                                      self.config.drain_interval))
                return
            request, expired = self.queue.pop(now)
            for stale in expired:
                self._shed(stale, ShedReason.DEADLINE_EXPIRED)
            if request is None:
                break
            group = self.port.ring_for(request.key)
            if not self.monitor.has_headroom(group):
                # Ring backlog at budget: put the request back at the
                # front of its lane and retry next drain tick.
                self.queue.requeue_front(request)
                self._update_gauges()
                self._ensure_pump()
                return
            self.bucket.try_take(now)
            self._admit(request, group, now)
        self._update_gauges()
        self._ensure_pump()

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def _admit(self, request: Request, group: int, now: float) -> Response:
        payload = encode_envelope(request.client, request.uid, request.body)
        if not self.port.submit(group, payload):
            # Unreachable while the headroom guard holds; counted loudly
            # because a nonzero stall total means the shedder failed.
            self.m_stalls.inc()
            return self._shed(request, ShedReason.UNAVAILABLE,
                              retry_after=self.config.drain_interval,
                              overload=True)
        self.m_admitted.inc()
        self._inflight[(request.client, request.uid)] = request.arrival
        response = Admitted(request.client, request.uid,
                            queued_for=now - request.arrival)
        self._record(request, response,
                     f"admit queued={response.queued_for:.6f}")
        return response

    def _shed(self, request: Request, reason: ShedReason,
              retry_after: float = 0.0, overload: bool = False) -> Response:
        self.m_shed[reason].inc()
        cls = Overload if overload else Shed
        response = cls(request.client, request.uid, reason=reason,
                       retry_after=retry_after)
        self._record(request, response, f"shed reason={reason.value}")
        return response

    def _record(self, request: Request, response: Response,
                detail: str) -> None:
        self._decisions.append(
            f"t={self.scheduler.now():.6f} client={request.client} "
            f"uid={request.uid} {detail}")
        if self._on_decision is not None:
            self._on_decision(request, response)

    # ------------------------------------------------------------------
    # replicated apply path
    # ------------------------------------------------------------------

    def _on_apply(self, member: NodeId, group: int, payload: bytes) -> None:
        parsed = decode_envelope(payload)
        if parsed is None:
            return  # foreign (non-service) traffic on the same ring
        client, uid, body = parsed
        op, key, value = decode_body(body)
        if op == OP_SET:
            self.stores[member][key] = value
        elif op == OP_DEL:
            self.stores[member].pop(key, None)
        elif op == OP_PUB:
            for fn in self._subscribers.get(member, {}).get(key, ()):
                fn(key, value)
        self._applied[member].append((group, client, uid))
        if member == self.port.gateway:
            arrival = self._inflight.pop((client, uid), None)
            if arrival is not None:
                latency = self.scheduler.now() - arrival
                self.m_completed.inc()
                self.m_latency.observe(latency)
                if self._on_complete is not None:
                    self._on_complete(client, uid, latency)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def get(self, key: bytes, member: Optional[NodeId] = None) -> Optional[bytes]:
        """Plain local read from ``member``'s replica (no wrappers)."""
        member = self.port.gateway if member is None else member
        return self.stores[member].get(key)

    def multi_get(self, keys: Sequence[bytes],
                  timeout: Optional[float] = None,
                  member: Optional[NodeId] = None) -> List[ReadResult]:
        """Cross-shard read with circuit breakers and a deadline budget.

        Each key's shard is consulted under its breaker: an open breaker
        or unhealthy shard serves the (possibly stale) local value as
        ``circuit-open``/``degraded``; shards past the deadline budget
        are not attempted (``deadline-expired``).  Healthy shard reads
        cost :attr:`ServiceConfig.read_cost` of budget each.
        """
        member = self.port.gateway if member is None else member
        store = self.stores[member]
        budget = DeadlineBudget(self.scheduler.now(),
                                timeout if timeout is not None
                                else self.config.read_timeout)
        results: List[ReadResult] = []
        for key in keys:
            self.m_reads.inc()
            if budget.expired:
                self.m_reads_degraded.inc()
                results.append(ReadResult(key, None, "deadline-expired"))
                continue
            group = self.port.ring_for(key)
            breaker = self.breakers[group]
            if not breaker.allow(budget.now):
                self.m_reads_degraded.inc()
                results.append(ReadResult(key, store.get(key),
                                          "circuit-open"))
            elif not budget.charge(self.config.read_cost):
                self.m_reads_degraded.inc()
                results.append(ReadResult(key, None, "deadline-expired"))
            elif self._shard_healthy(group):
                breaker.record_success(budget.now)
                results.append(ReadResult(key, store.get(key), "ok"))
            else:
                breaker.record_failure(budget.now)
                self.m_reads_degraded.inc()
                results.append(ReadResult(key, store.get(key), "degraded"))
            self.m_breaker[group].set(breaker.value(budget.now))
        return results

    def _shard_healthy(self, group: int) -> bool:
        """A shard is healthy with a quorum ring not in the shed band."""
        members = self.port.engine(group).membership.members
        quorum = len(self.port.members) // 2 + 1
        return len(members) >= quorum and self.monitor.state(group) != SHED

    # ------------------------------------------------------------------
    # lifecycle / harvesting
    # ------------------------------------------------------------------

    def rebind_node(self, node) -> None:
        """Re-attach a restarted incarnation (single-ring clusters).

        Restores the delivery hook and, when the restarted member is the
        gateway, points the pressure monitor at the fresh engine.
        """
        self.port.rebind(self, node)
        if node.node_id == self.port.gateway:
            self.monitor.rebind(0, node.srp)

    def quiesce(self, shed_remaining: bool = True) -> None:
        """Stop the pump; optionally shed everything still queued."""
        if self._pump_timer is not None:
            self._pump_timer.cancel()
            self._pump_timer = None
        if shed_remaining:
            for request in self.queue.drain_all():
                self._shed(request, ShedReason.UNAVAILABLE)
            self._update_gauges()

    @property
    def decisions(self) -> Tuple[str, ...]:
        return tuple(self._decisions)

    def decision_log_text(self) -> str:
        """The byte-stable admit/shed decision log."""
        return "\n".join(self._decisions) + ("\n" if self._decisions else "")

    def decision_digest(self) -> str:
        return hashlib.sha256(
            self.decision_log_text().encode()).hexdigest()[:16]

    def applied_log(self, member: NodeId) -> List[Tuple[int, int, int]]:
        """``(group, client, uid)`` ops applied at ``member``, in order."""
        return list(self._applied[member])

    def applied_log_bytes(self, member: NodeId) -> bytes:
        return b"".join(
            b"%d.%d.%d;" % entry for entry in self._applied[member])

    def applied_digest(self, member: NodeId) -> str:
        return hashlib.sha256(
            self.applied_log_bytes(member)).hexdigest()[:16]

    def applied_ids(self, member: Optional[NodeId] = None) -> frozenset:
        """The ``(client, uid)`` set applied at ``member`` (gateway)."""
        member = self.port.gateway if member is None else member
        return frozenset((c, u) for _g, c, u in self._applied[member])

    def converged(self) -> bool:
        """True when every member's KV replica holds identical state."""
        stores = [self.stores[m] for m in self.port.members]
        return all(store == stores[0] for store in stores[1:])

    def slo_snapshot(self) -> Dict[str, Any]:
        """The service-level summary the bench and CI artifacts report."""
        shed = {reason.value: int(counter.value)
                for reason, counter in self.m_shed.items()
                if counter.value}
        return {
            "service": self.config.name,
            "requests": int(self.m_requests.value),
            "admitted": int(self.m_admitted.value),
            "completed": int(self.m_completed.value),
            "shed": shed,
            "shed_total": int(sum(c.value for c in self.m_shed.values())),
            "ring_stalls": int(self.m_stalls.value),
            "queue_depth": int(self.m_queue_depth.value),
            "latency_p50_ms": round(self.m_latency.quantile(0.50) * 1e3, 6),
            "latency_p99_ms": round(self.m_latency.quantile(0.99) * 1e3, 6),
            "pressure": {str(g): round(self.monitor.pressure(g), 6)
                         for g in self.port.groups},
        }
