"""Typed requests, responses and the service wire envelope.

The service facade speaks a small, closed vocabulary to its clients:
every submitted :class:`Request` eventually yields exactly one *decision*
response — :class:`Admitted` or a typed :class:`Shed` (with its
:class:`Overload` subtype for pressure-driven rejections) — and admitted
writes later yield one *completion* when the replicated operation applies
at the gateway replica.  Reads return :class:`ReadResult` values that are
explicit about degradation (stale local data served while a shard's
circuit breaker is open).

Wire envelope
-------------

Replicated operations travel as ``SV1 client:u32 uid:u64 body`` where
``body`` is one service operation: ``S``/``D`` key-value writes (the
:mod:`repro.app.sharded_kv` op format) or ``P`` topic publications.  The
envelope is what lets every replica — and the campaign oracles — map a
delivered message back to the client request that produced it.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from ..errors import CodecError

#: Envelope magic; bump if the layout changes incompatibly.
ENVELOPE_MAGIC = b"SV1"
_ENVELOPE = struct.Struct(">IQ")
ENVELOPE_LEN = len(ENVELOPE_MAGIC) + _ENVELOPE.size

#: Service operation kinds (first byte of the envelope body).
OP_SET = b"S"
OP_DEL = b"D"
OP_PUB = b"P"

_KEY_LEN = struct.Struct(">H")


class ShedReason(str, Enum):
    """Why a request was rejected instead of admitted."""

    #: The token bucket was empty and the request could not wait.
    RATE_LIMITED = "rate-limited"
    #: The bounded admission queue (global or per-client) was full.
    QUEUE_FULL = "queue-full"
    #: The request's deadline passed while it waited for admission.
    DEADLINE_EXPIRED = "deadline-expired"
    #: The flow-control-aware shedder saw the ring near its backlog
    #: window and rejected the request before the ring could stall.
    BACKPRESSURE = "backpressure"
    #: A shard's circuit breaker is open (cross-shard reads).
    CIRCUIT_OPEN = "circuit-open"
    #: The gateway engine refused the submit (should never happen while
    #: the shedder holds headroom; counted as a flow-window stall).
    UNAVAILABLE = "unavailable"


@dataclass(frozen=True)
class Request:
    """One client request, as the admission pipeline sees it.

    ``uid`` increases per client; ``(client, uid)`` is the request's
    identity everywhere (decision log, delivered-op log, oracles).
    ``deadline`` is an absolute virtual time after which admission is
    pointless; ``weight`` scales the client's share of the weighted-fair
    drain (a weight-2 client drains twice as fast as a weight-1 one).
    """

    client: int
    uid: int
    key: bytes
    body: bytes
    deadline: Optional[float] = None
    weight: int = 1
    #: Stamped by the facade when the request arrives.
    arrival: float = field(default=0.0, compare=False)


class Response:
    """Base class of every client-visible decision."""

    __slots__ = ()


@dataclass(frozen=True)
class Admitted(Response):
    """The request was accepted into the replicated log."""

    client: int
    uid: int
    #: Virtual seconds the request waited in the admission queue.
    queued_for: float = 0.0


@dataclass(frozen=True)
class Shed(Response):
    """The request was rejected with a typed reason.

    ``retry_after`` is advisory: the earliest virtual time offset at
    which retrying could plausibly succeed (token-bucket refill time for
    rate sheds, the drain interval otherwise).
    """

    client: int
    uid: int
    reason: ShedReason
    retry_after: float = 0.0


@dataclass(frozen=True)
class Overload(Shed):
    """A shed caused by pressure (backpressure / rate / queue bounds).

    Distinguished so clients can treat overload sheds (back off) apart
    from per-request sheds like an expired deadline (give up).
    """


@dataclass(frozen=True)
class ReadResult:
    """One key's outcome in a (cross-shard) read."""

    key: bytes
    value: Optional[bytes]
    #: "ok", "degraded" (stale local value, breaker open or shard
    #: unhealthy), "circuit-open" or "deadline-expired".
    status: str = "ok"

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# ----------------------------------------------------------------------
# wire envelope
# ----------------------------------------------------------------------

def encode_envelope(client: int, uid: int, body: bytes) -> bytes:
    """Wrap one service operation body for replication."""
    if client < 0 or client > 0xFFFFFFFF:
        raise CodecError(f"client id {client} out of range")
    if uid < 0 or uid > 0xFFFFFFFFFFFFFFFF:
        raise CodecError(f"request uid {uid} out of range")
    return ENVELOPE_MAGIC + _ENVELOPE.pack(client, uid) + body


def decode_envelope(payload: bytes) -> Optional[Tuple[int, int, bytes]]:
    """Parse ``(client, uid, body)``; None for non-service payloads."""
    if payload[:len(ENVELOPE_MAGIC)] != ENVELOPE_MAGIC:
        return None
    if len(payload) < ENVELOPE_LEN:
        raise CodecError("service envelope truncated")
    client, uid = _ENVELOPE.unpack_from(payload, len(ENVELOPE_MAGIC))
    return client, uid, payload[ENVELOPE_LEN:]


def encode_set(key: bytes, value: bytes) -> bytes:
    """Body of a replicated ``key = value`` write."""
    return _encode_keyed(OP_SET, key, value)


def encode_delete(key: bytes) -> bytes:
    """Body of a replicated delete."""
    return _encode_keyed(OP_DEL, key)


def encode_publish(topic: bytes, data: bytes) -> bytes:
    """Body of a pub-sub publication on ``topic``."""
    return _encode_keyed(OP_PUB, topic, data)


def _encode_keyed(op: bytes, key: bytes, value: bytes = b"") -> bytes:
    if len(key) > 0xFFFF:
        raise CodecError("key too long")
    return op + _KEY_LEN.pack(len(key)) + key + value


def decode_body(body: bytes) -> Tuple[bytes, bytes, bytes]:
    """Parse one service operation body into ``(op, key, value)``."""
    if len(body) < 1 + _KEY_LEN.size:
        raise CodecError("service op truncated")
    op = body[:1]
    if op not in (OP_SET, OP_DEL, OP_PUB):
        raise CodecError(f"unknown service op {op!r}")
    (key_len,) = _KEY_LEN.unpack_from(body, 1)
    key_end = 1 + _KEY_LEN.size + key_len
    if len(body) < key_end:
        raise CodecError("service op truncated")
    return op, body[1 + _KEY_LEN.size:key_end], body[key_end:]
