"""Optional compiled core (a hand-written CPython extension).

``repro._fast._corec`` holds C twins of the simulator's hot paths — the
scheduler dispatch loop, the receive buffer, the chunk reassembler and the
SRP delivery sweep.  The extension is *opt-in*: a plain checkout (or a
plain ``pip install``) never needs a C compiler, and everything runs on the
pure-Python implementations.  Build it with::

    python tools/build_accel.py

Selection happens in :mod:`repro.core.accel`; this package only answers
"is the extension importable?".  Setting ``REPRO_PURE=1`` in the
environment refuses the import outright — the escape hatch for bisecting a
suspected accel bug or for pinning a benchmark to the pure interpreter.

This module must stay import-cycle-free: it is imported by the lowest
layers (``sim.scheduler``, ``srp.ordering``) and therefore must not import
anything else from :mod:`repro`.
"""

from __future__ import annotations

import os

corec = None
if os.environ.get("REPRO_PURE", "").strip().lower() not in ("1", "true", "yes"):
    try:
        from . import _corec as corec  # type: ignore[no-redef]
    except ImportError:
        corec = None

#: Active implementation slots, read by the hot call sites each call
#: (``None`` selects the pure-Python path).  They live HERE, in the leaf
#: package, because the modules that read them (``sim.scheduler``,
#: ``srp.engine``) sit below :mod:`repro.core` in the import graph; the
#: :mod:`repro.core.accel` facade is the only writer.
scheduler_run_until = None        #: compiled EventScheduler.run_until loop
engine_try_deliver = None         #: compiled TotemSrp._try_deliver sweep
engine_apply_batched = None       #: compiled TotemSrp._apply_batched_packet
engine_on_batch = None            #: compiled TotemSrp.on_batch
engine_broadcast_batched = None   #: compiled TotemSrp._broadcast_batched
engine_is_duplicate_batch = None  #: compiled TotemSrp.is_duplicate_batch
codec_encode = None               #: compiled encode_packet (DATA/BATCH)
codec_decode = None               #: compiled decode_packet (DATA/BATCH)
cpu_submit = None                 #: compiled NodeCpu.submit
cpu_finish = None                 #: compiled NodeCpu._finish body

__all__ = [
    "corec",
    "scheduler_run_until",
    "engine_try_deliver",
    "engine_apply_batched",
    "engine_on_batch",
    "engine_broadcast_batched",
    "engine_is_duplicate_batch",
    "codec_encode",
    "codec_decode",
    "cpu_submit",
    "cpu_finish",
]
