/* _corec: hand-written CPython acceleration of the simulator's hot paths.
 *
 * Design rule (docs/PERFORMANCE.md): ALL simulation state stays in ordinary
 * Python objects — the scheduler's heap list and now-queue deque, the
 * clock's `_now` float, the engines' dicts and ints.  The C code here only
 * *executes* over that state, so `copy.deepcopy` world-forking
 * (repro.check explore), canonical digests and pickling all keep working
 * unchanged, and every function has a byte-for-byte-equivalent pure-Python
 * twin selected by the `repro.core.accel` facade.
 *
 * Compiled pieces:
 *   run_until(scheduler, t)       — the event-dispatch inner loop
 *   ReceiveBuffer                 — seq-ordered packet store (srp/ordering)
 *   Reassembler                   — chunk reassembly      (srp/packing)
 *   try_deliver(engine)           — contiguous delivery sweep
 *   apply_batched(engine, p, net) — per-packet batch apply fast path
 *   encode_data / encode_batch /
 *   decode_data / decode_batch    — wire codec for the data hot kinds
 *
 * Anything rare (membership, recovery, foreign traffic, fragmentation
 * tails) bails out to the engine's Python methods, which keeps the
 * compiled surface small and the protocol logic in one place.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stddef.h>
#include <string.h>

/* ---------------------------------------------------------------------
 * cached objects, bound once from Python via _corec.bind(...)
 * ------------------------------------------------------------------- */

static PyObject *g_sim_error;        /* repro.errors.SimulationError */
static PyObject *g_delivered_cls;    /* repro.types.DeliveredMessage */
static PyObject *g_chunk_app;        /* ChunkKind.APP */
static PyObject *g_state_recovery;   /* SrpState.RECOVERY */

/* interned attribute-name strings */
static PyObject *s_heap, *s_now_queue, *s_popleft, *s_clock, *s_now_attr,
    *s_dead, *s_events_processed, *s_seq, *s_sender, *s_ring_id, *s_chunks,
    *s_kind, *s_flags, *s_data, *s_msg_id, *s_recv_buffer, *s_delivered_seq,
    *s_stable_seq, *s_reassembler, *s_stats, *s_on_deliver, *s_config,
    *s_safe_delivery, *s_my_aru, *s_msgs_delivered, *s_bytes_delivered,
    *s_packets_received, *s_duplicate_packets, *s_pending_applies,
    *s_discard, *s_stopped, *s_ring_aliases, *s_last_token, *s_state,
    *s_cancel_retrans, *s_retrans_timer, *s_absorb_recovery, *s_on_data;

static PyObject *g_empty_bytes;      /* b"" (for join) */
static PyObject *s_join, *s_get, *s_feed, *s_insert;

/* wire classes + codec errors (bound alongside the rest) */
static PyObject *g_chunk_cls;        /* repro.wire.packets.Chunk */
static PyObject *g_data_cls;         /* repro.wire.packets.DataPacket */
static PyObject *g_batch_cls;        /* repro.wire.packets.BatchPacket */
static PyObject *g_ring_cls;         /* repro.types.RingId */
static PyObject *g_codec_error;      /* repro.errors.CodecError */
static PyObject *g_checksum_error;   /* repro.errors.ChecksumError */
static long long g_chunk_hdr;        /* CHUNK_HEADER_BYTES */
static long long g_batch_base;       /* BATCH_BASE_BYTES */
static long long g_batch_sub;        /* BATCH_SUB_HEADER_BYTES */
static long long g_batch_max;        /* BATCH_MAX_PACKETS */

static PyObject *g_empty_tuple;      /* () */
static PyObject *g_flag_whole;       /* int(FIRST | LAST) == 3 */

static PyObject *s_queue, *s_bytes, *s_max_payload, *s_enable_packing,
    *s_next_msg_id, *s_partial, *s_next_packet_chunks, *s_packer,
    *s_transport, *s_broadcast_data, *s_broadcast_batch,
    *s_packets_broadcast, *s_node_id, *s_packets, *s_wire_size_attr,
    *s_apply_batched, *s_deliver_after, *s_runtime, *s_drain_now, *s_add,
    *s_has, *s_representative, *s_validate;

/* CPU-pipeline / delivery-log fast paths (third coverage round) */
static PyObject *g_transport_error;  /* repro.errors.TransportError */
static PyObject *g_dlog_on_deliver;  /* DeliveryLog.on_deliver (plain fn) */
static PyObject *g_recvjob_cls;      /* net.stack._RecvJobCost */
static PyObject *g_stack_dispatch;   /* NetworkStack._dispatch (plain fn) */
static PyObject *g_zero;             /* int(0) */

/* dispatch-site shortcuts (fourth coverage round): the *scheduled*
 * callbacks stay ordinary bound methods (the explorer and deepcopy
 * snapshots depend on that), but when the compiled run_until loop pops
 * one whose function body already has a C twin, it dispatches straight
 * to the twin instead of paying the Python wrapper frame. */
static PyObject *g_apply_fn;         /* TotemSrp._apply_batched_packet */
static PyObject *g_deliver_after_fn; /* TotemSrp._deliver_after_batch */
static PyObject *g_fanout_fn;        /* SimLan._fanout */
static PyObject *g_cpu_finish_fn;    /* NodeCpu._finish */
static PyObject *g_portdeliver_cls;  /* net.stack._PortDeliver */
static PyObject *g_recv_cost_fn;     /* ReplicationEngine._recv_cost */
static PyObject *g_try_deliver_fn;   /* TotemSrp._try_deliver */
static PyObject *g_cpu_submit_fn;    /* NodeCpu.submit */
static PyObject *g_port_broadcast_fn; /* LanPort.broadcast */
static PyObject *g_port_unicast_fn;  /* LanPort.unicast */
static PyObject *g_on_packet_fn;     /* ReplicationEngine.on_packet */
static PyObject *g_recv_batch_fn;    /* ReplicationEngine.recv_batch */
static PyObject *g_srp_on_batch_fn;  /* TotemSrp.on_batch */

static PyObject *s_messages, *s_finish, *s_running, *s_append, *s_counter,
    *s_recv_cost_fn, *s_stack_attr, *s_packet_attr, *s_handler,
    *s_undelivered, *s_busy_time, *s_operations, *s_scheduler,
    *s_dispatch_meth, *s_cpu_attr, *s_network_attr, *s_recv_lan,
    *s_srp_attr, *s_srp_pub, *s_recv_batch, *s_on_batch_meth,
    *s_cpu_recv, *s_cpu_byte_recv, *s_cpu_msg, *s_cpu_dup,
    *s_cpu_byte_dup, *s_try_deliver, *s_submit, *s_wire_size_meth,
    *s_observer, *s_faults, *s_down, *s_send_blocked, *s_recv_blocked,
    *s_blocked_pairs, *s_partition, *s_burst_loss, *s_drop_serials,
    *s_extra_loss, *s_loss_rate, *s_tx_serial, *s_generations, *s_channels,
    *s_channel_receivers, *s_medium_free, *s_fanout_attr, *s_frames_offered,
    *s_frames_sent, *s_deliveries, *s_frames_blocked, *s_payload_bytes,
    *s_wire_bytes, *s_frame_overhead, *s_min_frame, *s_latency, *s_bandwidth,
    *s_lan_attr, *s_node_attr, *s_generation_attr;

static int dispatch_event(PyObject *cb, PyObject *cargs);

static int
intern_all(void)
{
#define INTERN(var, name) \
    if (!(var = PyUnicode_InternFromString(name))) return -1;
    INTERN(s_heap, "_heap")
    INTERN(s_now_queue, "_now_queue")
    INTERN(s_popleft, "popleft")
    INTERN(s_clock, "clock")
    INTERN(s_now_attr, "_now")
    INTERN(s_dead, "_dead")
    INTERN(s_events_processed, "_events_processed")
    INTERN(s_seq, "seq")
    INTERN(s_sender, "sender")
    INTERN(s_ring_id, "ring_id")
    INTERN(s_chunks, "chunks")
    INTERN(s_kind, "kind")
    INTERN(s_flags, "flags")
    INTERN(s_data, "data")
    INTERN(s_msg_id, "msg_id")
    INTERN(s_recv_buffer, "recv_buffer")
    INTERN(s_delivered_seq, "_delivered_seq")
    INTERN(s_stable_seq, "_stable_seq")
    INTERN(s_reassembler, "_reassembler")
    INTERN(s_stats, "stats")
    INTERN(s_on_deliver, "on_deliver")
    INTERN(s_config, "config")
    INTERN(s_safe_delivery, "safe_delivery")
    INTERN(s_my_aru, "my_aru")
    INTERN(s_msgs_delivered, "msgs_delivered")
    INTERN(s_bytes_delivered, "bytes_delivered")
    INTERN(s_packets_received, "packets_received")
    INTERN(s_duplicate_packets, "duplicate_packets")
    INTERN(s_pending_applies, "_pending_applies")
    INTERN(s_discard, "discard")
    INTERN(s_stopped, "_stopped")
    INTERN(s_ring_aliases, "_ring_aliases")
    INTERN(s_last_token, "_last_token")
    INTERN(s_state, "state")
    INTERN(s_cancel_retrans, "_cancel_token_retrans_timer")
    INTERN(s_retrans_timer, "_token_retrans_timer")
    INTERN(s_absorb_recovery, "_absorb_recovery_progress")
    INTERN(s_on_data, "on_data")
    INTERN(s_join, "join")
    INTERN(s_get, "get")
    INTERN(s_feed, "feed")
    INTERN(s_insert, "insert")
    INTERN(s_queue, "_queue")
    INTERN(s_bytes, "_bytes")
    INTERN(s_max_payload, "_max_payload")
    INTERN(s_enable_packing, "_enable_packing")
    INTERN(s_next_msg_id, "_next_msg_id")
    INTERN(s_partial, "_partial")
    INTERN(s_next_packet_chunks, "next_packet_chunks")
    INTERN(s_packer, "_packer")
    INTERN(s_transport, "transport")
    INTERN(s_broadcast_data, "broadcast_data")
    INTERN(s_broadcast_batch, "broadcast_batch")
    INTERN(s_packets_broadcast, "packets_broadcast")
    INTERN(s_node_id, "node_id")
    INTERN(s_packets, "packets")
    INTERN(s_wire_size_attr, "_wire_size")
    INTERN(s_apply_batched, "_apply_batched_packet")
    INTERN(s_deliver_after, "_deliver_after_batch")
    INTERN(s_runtime, "runtime")
    INTERN(s_drain_now, "drain_now")
    INTERN(s_add, "add")
    INTERN(s_has, "has")
    INTERN(s_representative, "representative")
    INTERN(s_validate, "validate")
    INTERN(s_messages, "messages")
    INTERN(s_finish, "_finish")
    INTERN(s_running, "_running")
    INTERN(s_append, "append")
    INTERN(s_counter, "_counter")
    INTERN(s_recv_cost_fn, "_recv_cost_fn")
    INTERN(s_stack_attr, "_stack")
    INTERN(s_packet_attr, "_packet")
    INTERN(s_handler, "_handler")
    INTERN(s_undelivered, "undelivered")
    INTERN(s_busy_time, "busy_time")
    INTERN(s_operations, "operations")
    INTERN(s_scheduler, "_scheduler")
    INTERN(s_dispatch_meth, "_dispatch")
    INTERN(s_cpu_attr, "_cpu")
    INTERN(s_network_attr, "_network")
    INTERN(s_recv_lan, "_recv_lan_config")
    INTERN(s_srp_attr, "_srp")
    INTERN(s_srp_pub, "srp")
    INTERN(s_recv_batch, "recv_batch")
    INTERN(s_on_batch_meth, "on_batch")
    INTERN(s_cpu_recv, "cpu_per_recv")
    INTERN(s_cpu_byte_recv, "cpu_per_byte_recv")
    INTERN(s_cpu_msg, "cpu_per_msg")
    INTERN(s_cpu_dup, "cpu_per_dup_recv")
    INTERN(s_cpu_byte_dup, "cpu_per_byte_dup")
    INTERN(s_try_deliver, "_try_deliver")
    INTERN(s_submit, "submit")
    INTERN(s_wire_size_meth, "wire_size")
    INTERN(s_observer, "observer")
    INTERN(s_faults, "faults")
    INTERN(s_down, "down")
    INTERN(s_send_blocked, "send_blocked")
    INTERN(s_recv_blocked, "recv_blocked")
    INTERN(s_blocked_pairs, "blocked_pairs")
    INTERN(s_partition, "partition")
    INTERN(s_burst_loss, "burst_loss")
    INTERN(s_drop_serials, "drop_serials")
    INTERN(s_extra_loss, "extra_loss_rate")
    INTERN(s_loss_rate, "loss_rate")
    INTERN(s_tx_serial, "_tx_serial")
    INTERN(s_generations, "_generations")
    INTERN(s_channels, "_channels")
    INTERN(s_channel_receivers, "_channel_receivers")
    INTERN(s_medium_free, "_medium_free_at")
    INTERN(s_fanout_attr, "_fanout")
    INTERN(s_frames_offered, "frames_offered")
    INTERN(s_frames_sent, "frames_sent")
    INTERN(s_deliveries, "deliveries")
    INTERN(s_frames_blocked, "frames_blocked")
    INTERN(s_payload_bytes, "payload_bytes")
    INTERN(s_wire_bytes, "wire_bytes")
    INTERN(s_frame_overhead, "frame_overhead")
    INTERN(s_min_frame, "min_frame")
    INTERN(s_latency, "latency")
    INTERN(s_bandwidth, "bandwidth_bps")
    INTERN(s_lan_attr, "_lan")
    INTERN(s_node_attr, "_node")
    INTERN(s_generation_attr, "_generation")
#undef INTERN
    if (!(g_empty_bytes = PyBytes_FromStringAndSize("", 0)))
        return -1;
    if (!(g_empty_tuple = PyTuple_New(0)))
        return -1;
    if (!(g_flag_whole = PyLong_FromLong(3)))
        return -1;
    if (!(g_zero = PyLong_FromLong(0)))
        return -1;
    return 0;
}

/* _corec.bind(sim_error, delivered_cls, chunk_app, state_recovery,
 *             chunk_cls, data_cls, batch_cls, ring_cls,
 *             codec_error, checksum_error,
 *             transport_error, dlog_on_deliver, recvjob_cls, stack_dispatch,
 *             apply_fn, deliver_after_fn, fanout_fn, cpu_finish_fn,
 *             portdeliver_cls, recv_cost_fn, try_deliver_fn, cpu_submit_fn,
 *             port_broadcast_fn, port_unicast_fn,
 *             chunk_header_bytes, batch_base_bytes, batch_sub_bytes,
 *             batch_max_packets) */
static PyObject *
corec_bind(PyObject *self, PyObject *args)
{
    PyObject *err, *dcls, *app, *rec, *ccls, *pcls, *bcls, *rcls,
        *cerr, *crcerr, *terr, *dlogfn, *rjcls, *dispfn,
        *applyfn, *dafterfn, *fanoutfn, *cfinfn, *pdcls, *rcostfn,
        *tdfn, *csubfn, *pbfn, *pufn, *onpktfn, *recvbfn, *srponbfn;
    int chunk_hdr, batch_base, batch_sub, batch_max;
    if (!PyArg_ParseTuple(args, "OOOOOOOOOOOOOOOOOOOOOOOOOOOiiii",
                          &err, &dcls, &app, &rec,
                          &ccls, &pcls, &bcls, &rcls, &cerr, &crcerr,
                          &terr, &dlogfn, &rjcls, &dispfn,
                          &applyfn, &dafterfn, &fanoutfn, &cfinfn,
                          &pdcls, &rcostfn, &tdfn, &csubfn, &pbfn, &pufn,
                          &onpktfn, &recvbfn, &srponbfn,
                          &chunk_hdr, &batch_base, &batch_sub, &batch_max))
        return NULL;
    if (!PyType_Check(dcls)
            || !PyType_IsSubtype((PyTypeObject *)dcls, &PyTuple_Type)) {
        PyErr_SetString(PyExc_TypeError,
                        "DeliveredMessage must be a tuple subclass");
        return NULL;
    }
    if (!PyType_Check(ccls) || !PyType_Check(pcls) || !PyType_Check(bcls)
            || !PyType_Check(rcls)) {
        PyErr_SetString(PyExc_TypeError,
                        "Chunk/DataPacket/BatchPacket/RingId must be types");
        return NULL;
    }
    Py_XSETREF(g_sim_error, Py_NewRef(err));
    Py_XSETREF(g_delivered_cls, Py_NewRef(dcls));
    Py_XSETREF(g_chunk_app, Py_NewRef(app));
    Py_XSETREF(g_state_recovery, Py_NewRef(rec));
    Py_XSETREF(g_chunk_cls, Py_NewRef(ccls));
    Py_XSETREF(g_data_cls, Py_NewRef(pcls));
    Py_XSETREF(g_batch_cls, Py_NewRef(bcls));
    Py_XSETREF(g_ring_cls, Py_NewRef(rcls));
    Py_XSETREF(g_codec_error, Py_NewRef(cerr));
    Py_XSETREF(g_checksum_error, Py_NewRef(crcerr));
    Py_XSETREF(g_transport_error, Py_NewRef(terr));
    Py_XSETREF(g_dlog_on_deliver, Py_NewRef(dlogfn));
    Py_XSETREF(g_recvjob_cls, Py_NewRef(rjcls));
    Py_XSETREF(g_stack_dispatch, Py_NewRef(dispfn));
    Py_XSETREF(g_apply_fn, Py_NewRef(applyfn));
    Py_XSETREF(g_deliver_after_fn, Py_NewRef(dafterfn));
    Py_XSETREF(g_fanout_fn, Py_NewRef(fanoutfn));
    Py_XSETREF(g_cpu_finish_fn, Py_NewRef(cfinfn));
    Py_XSETREF(g_portdeliver_cls, Py_NewRef(pdcls));
    Py_XSETREF(g_recv_cost_fn, Py_NewRef(rcostfn));
    Py_XSETREF(g_try_deliver_fn, Py_NewRef(tdfn));
    Py_XSETREF(g_cpu_submit_fn, Py_NewRef(csubfn));
    Py_XSETREF(g_port_broadcast_fn, Py_NewRef(pbfn));
    Py_XSETREF(g_port_unicast_fn, Py_NewRef(pufn));
    Py_XSETREF(g_on_packet_fn, Py_NewRef(onpktfn));
    Py_XSETREF(g_recv_batch_fn, Py_NewRef(recvbfn));
    Py_XSETREF(g_srp_on_batch_fn, Py_NewRef(srponbfn));
    g_chunk_hdr = chunk_hdr;
    g_batch_base = batch_base;
    g_batch_sub = batch_sub;
    g_batch_max = batch_max;
    Py_RETURN_NONE;
}

static int
check_bound(void)
{
    if (g_delivered_cls == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_corec.bind() has not been called");
        return -1;
    }
    return 0;
}

/* ---------------------------------------------------------------------
 * small helpers
 * ------------------------------------------------------------------- */

/* Read an integer attribute as long long.  -1 with error set on failure. */
static int
attr_as_ll(PyObject *obj, PyObject *name, long long *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    long long r = PyLong_AsLongLong(v);
    Py_DECREF(v);
    if (r == -1 && PyErr_Occurred())
        return -1;
    *out = r;
    return 0;
}

static int
attr_set_ll(PyObject *obj, PyObject *name, long long value)
{
    PyObject *v = PyLong_FromLongLong(value);
    if (v == NULL)
        return -1;
    int r = PyObject_SetAttr(obj, name, v);
    Py_DECREF(v);
    return r;
}

/* attr += delta, via ordinary attribute access (visible to Python). */
static int
attr_add_ll(PyObject *obj, PyObject *name, long long delta)
{
    long long v;
    if (attr_as_ll(obj, name, &v) < 0)
        return -1;
    return attr_set_ll(obj, name, v + delta);
}

/* Python-number attribute as double. */
static int
attr_as_double(PyObject *obj, PyObject *name, double *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    double d = PyFloat_AsDouble(v);
    Py_DECREF(v);
    if (d == -1.0 && PyErr_Occurred())
        return -1;
    *out = d;
    return 0;
}

/* attr += delta for float attributes (same IEEE add as the pure `+=`). */
static int
attr_add_double(PyObject *obj, PyObject *name, double delta)
{
    double v;
    if (attr_as_double(obj, name, &v) < 0)
        return -1;
    PyObject *nv = PyFloat_FromDouble(v + delta);
    if (nv == NULL)
        return -1;
    int r = PyObject_SetAttr(obj, name, nv);
    Py_DECREF(nv);
    return r;
}

/* ---------------------------------------------------------------------
 * heap entry comparison + pop (mirrors heapq over [when, counter, cb, args])
 * ------------------------------------------------------------------- */

/* entry a < entry b under the (when, counter) key.  1/0, -1 on error. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    if (!PyList_Check(a) || PyList_GET_SIZE(a) < 2
            || !PyList_Check(b) || PyList_GET_SIZE(b) < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "heap entries must be [when, counter, cb, args] lists");
        return -1;
    }
    PyObject *wa = PyList_GET_ITEM(a, 0);
    PyObject *wb = PyList_GET_ITEM(b, 0);
    if (PyFloat_CheckExact(wa) && PyFloat_CheckExact(wb)) {
        double da = PyFloat_AS_DOUBLE(wa), db = PyFloat_AS_DOUBLE(wb);
        if (da < db)
            return 1;
        if (da > db)
            return 0;
    }
    else {
        int r = PyObject_RichCompareBool(wa, wb, Py_LT);
        if (r != 0)
            return r;               /* strictly less, or error */
        r = PyObject_RichCompareBool(wb, wa, Py_LT);
        if (r < 0)
            return -1;
        if (r == 1)
            return 0;               /* strictly greater */
    }
    /* equal when: counters are unique ints, compare them */
    PyObject *ca = PyList_GET_ITEM(a, 1);
    PyObject *cb = PyList_GET_ITEM(b, 1);
    if (PyLong_CheckExact(ca) && PyLong_CheckExact(cb)) {
        long long la = PyLong_AsLongLong(ca);
        long long lb = PyLong_AsLongLong(cb);
        if ((la == -1 || lb == -1) && PyErr_Occurred())
            return -1;
        return la < lb;
    }
    return PyObject_RichCompareBool(ca, cb, Py_LT);
}

/* heapq._siftup clone, entries only.  0 / -1. */
static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < n) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < n) {
            int r = entry_lt(PyList_GET_ITEM(heap, childpos),
                             PyList_GET_ITEM(heap, rightpos));
            if (r < 0)
                goto fail;
            if (!r)
                childpos = rightpos;
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        PyList_SetItem(heap, pos, child);   /* steals child ref */
        pos = childpos;
        childpos = 2 * pos + 1;
        n = PyList_GET_SIZE(heap);          /* callbacks cannot run here, but stay safe */
    }
    PyList_SetItem(heap, pos, newitem);     /* steals newitem ref */
    /* sift down toward the root (heapq does this as part of _siftup via
     * _siftdown(startpos, pos)) */
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        PyObject *item = PyList_GET_ITEM(heap, pos);
        int r = entry_lt(item, parent);
        if (r < 0)
            return -1;
        if (!r)
            break;
        Py_INCREF(parent);
        Py_INCREF(item);
        PyList_SetItem(heap, parentpos, item);
        PyList_SetItem(heap, pos, parent);
        pos = parentpos;
    }
    return 0;
fail:
    Py_DECREF(newitem);
    return -1;
}

/* Pop the smallest entry.  New reference; NULL on error (or empty heap). */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    if (n == 0) {
        PyErr_SetString(PyExc_IndexError, "pop from empty heap");
        return NULL;
    }
    PyObject *last = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (PyList_GET_SIZE(heap) == 0)
        return last;                        /* it was the only entry */
    PyObject *smallest = PyList_GET_ITEM(heap, 0);
    Py_INCREF(smallest);
    PyList_SetItem(heap, 0, last);          /* steals last ref */
    if (heap_siftup(heap, 0) < 0) {
        Py_DECREF(smallest);
        return NULL;
    }
    return smallest;
}

/* heapq.heappush clone (append + siftdown toward the root).  0 / -1. */
static int
heap_push(PyObject *heap, PyObject *entry)
{
    if (PyList_Append(heap, entry) < 0)
        return -1;
    Py_ssize_t pos = PyList_GET_SIZE(heap) - 1;
    while (pos > 0) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        PyObject *item = PyList_GET_ITEM(heap, pos);
        int r = entry_lt(item, parent);
        if (r < 0)
            return -1;
        if (!r)
            break;
        Py_INCREF(parent);
        Py_INCREF(item);
        PyList_SetItem(heap, parentpos, item);
        PyList_SetItem(heap, pos, parent);
        pos = parentpos;
    }
    return 0;
}

/* ---------------------------------------------------------------------
 * run_until(scheduler, t): the dispatch inner loop
 * ------------------------------------------------------------------- */

/* Timestamp of a heap entry as a double; validates the entry shape. */
static int
entry_when(PyObject *entry, double *out)
{
    if (!PyList_Check(entry) || PyList_GET_SIZE(entry) != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "heap entries must be [when, counter, cb, args] lists");
        return -1;
    }
    double w = PyFloat_AsDouble(PyList_GET_ITEM(entry, 0));
    if (w == -1.0 && PyErr_Occurred())
        return -1;
    *out = w;
    return 0;
}

/* Set clock._now = when (write-through so callbacks observe the time). */
static int
clock_set(PyObject *clock, double when)
{
    PyObject *v = PyFloat_FromDouble(when);
    if (v == NULL)
        return -1;
    int r = PyObject_SetAttr(clock, s_now_attr, v);
    Py_DECREF(v);
    return r;
}

static PyObject *
corec_run_until(PyObject *self, PyObject *args)
{
    PyObject *sched;
    double t;
    if (!PyArg_ParseTuple(args, "Od", &sched, &t))
        return NULL;
    PyObject *heap = PyObject_GetAttr(sched, s_heap);
    PyObject *nowq = NULL, *popleft = NULL, *clock = NULL;
    if (heap == NULL || !PyList_Check(heap))
        goto type_fail;
    nowq = PyObject_GetAttr(sched, s_now_queue);
    if (nowq == NULL)
        goto fail;
    popleft = PyObject_GetAttr(nowq, s_popleft);
    if (popleft == NULL)
        goto fail;
    clock = PyObject_GetAttr(sched, s_clock);
    if (clock == NULL)
        goto fail;
    double now;
    if (attr_as_double(clock, s_now_attr, &now) < 0)
        goto fail;

    long long events = 0;

    for (;;) {
        /* Vectorized same-timestamp dispatch: drain the now-queue FIFO. */
        for (;;) {
            Py_ssize_t qn = PySequence_Size(nowq);
            if (qn < 0)
                goto flush_fail;
            if (qn == 0)
                break;
            PyObject *pair = PyObject_CallNoArgs(popleft);
            if (pair == NULL)
                goto flush_fail;
            if (!PyTuple_CheckExact(pair) || PyTuple_GET_SIZE(pair) != 2) {
                Py_DECREF(pair);
                PyErr_SetString(PyExc_TypeError,
                                "now-queue entries must be (cb, args) tuples");
                goto flush_fail;
            }
            PyObject *cb = PyTuple_GET_ITEM(pair, 0);
            PyObject *cargs = PyTuple_GET_ITEM(pair, 1);
            int dres = dispatch_event(cb, cargs);
            Py_DECREF(pair);
            if (dres < 0)
                goto flush_fail;
            events++;
        }
        if (PyList_GET_SIZE(heap) == 0)
            break;
        PyObject *top = PyList_GET_ITEM(heap, 0);
        double when;
        if (entry_when(top, &when) < 0)
            goto flush_fail;
        if (when > t)
            break;
        PyObject *entry = heap_pop(heap);
        if (entry == NULL)
            goto flush_fail;
        PyObject *cb = PyList_GET_ITEM(entry, 2);
        if (cb == Py_None) {
            /* tombstone: discard with the live accounting */
            if (attr_add_ll(sched, s_dead, -1) < 0) {
                Py_DECREF(entry);
                goto flush_fail;
            }
            Py_DECREF(entry);
            continue;
        }
        Py_INCREF(cb);
        if (PyList_SetItem(entry, 2, Py_NewRef(Py_None)) < 0) {
            Py_DECREF(cb);
            Py_DECREF(entry);
            goto flush_fail;
        }
        if (when != now) {
            /* Flush the batched event count on every clock advance so
             * mid-run observers read an accurate monotone value. */
            if (attr_add_ll(sched, s_events_processed, events) < 0) {
                Py_DECREF(cb);
                Py_DECREF(entry);
                goto fail;
            }
            events = 0;
            if (clock_set(clock, when) < 0) {
                Py_DECREF(cb);
                Py_DECREF(entry);
                goto fail;
            }
            now = when;
        }
        PyObject *cargs = PyList_GET_ITEM(entry, 3);
        Py_INCREF(cargs);
        int dres = dispatch_event(cb, cargs);
        Py_DECREF(cargs);
        Py_DECREF(cb);
        Py_DECREF(entry);
        if (dres < 0)
            goto flush_fail;
        events++;

        /* Same-timestamp run: drain heap entries sharing `when` without
         * touching the clock, pausing whenever a now-event appears. */
        for (;;) {
            Py_ssize_t qn = PySequence_Size(nowq);
            if (qn < 0)
                goto flush_fail;
            if (qn != 0 || PyList_GET_SIZE(heap) == 0)
                break;
            top = PyList_GET_ITEM(heap, 0);
            double w2;
            if (entry_when(top, &w2) < 0)
                goto flush_fail;
            if (w2 != when)
                break;
            entry = heap_pop(heap);
            if (entry == NULL)
                goto flush_fail;
            cb = PyList_GET_ITEM(entry, 2);
            if (cb == Py_None) {
                if (attr_add_ll(sched, s_dead, -1) < 0) {
                    Py_DECREF(entry);
                    goto flush_fail;
                }
                Py_DECREF(entry);
                continue;
            }
            Py_INCREF(cb);
            if (PyList_SetItem(entry, 2, Py_NewRef(Py_None)) < 0) {
                Py_DECREF(cb);
                Py_DECREF(entry);
                goto flush_fail;
            }
            cargs = PyList_GET_ITEM(entry, 3);
            Py_INCREF(cargs);
            dres = dispatch_event(cb, cargs);
            Py_DECREF(cargs);
            Py_DECREF(cb);
            Py_DECREF(entry);
            if (dres < 0)
                goto flush_fail;
            events++;
        }
    }

    if (attr_add_ll(sched, s_events_processed, events) < 0)
        goto fail;
    if (t > now && clock_set(clock, t) < 0)
        goto fail;
    Py_DECREF(heap);
    Py_DECREF(nowq);
    Py_DECREF(popleft);
    Py_DECREF(clock);
    Py_RETURN_NONE;

type_fail:
    if (!PyErr_Occurred())
        PyErr_SetString(PyExc_TypeError, "scheduler._heap must be a list");
    goto fail;
flush_fail:
    /* mirror the pure loop's try/finally: never lose fired events */
    {
        PyObject *etype, *evalue, *etb;
        PyErr_Fetch(&etype, &evalue, &etb);
        (void)attr_add_ll(sched, s_events_processed, events);
        PyErr_Restore(etype, evalue, etb);
    }
fail:
    Py_XDECREF(heap);
    Py_XDECREF(nowq);
    Py_XDECREF(popleft);
    Py_XDECREF(clock);
    return NULL;
}

/* ---------------------------------------------------------------------
 * ReceiveBuffer: sequence-ordered packet store (see srp/ordering.py)
 * ------------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    PyObject *packets;          /* dict: seq (int) -> DataPacket */
    long long my_aru;
    long long high_seq;
    long long gc_floor;
} RBObject;

static PyTypeObject RBType;     /* forward */

static PyObject *
rb_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    RBObject *self = (RBObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->packets = PyDict_New();
    if (self->packets == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    self->my_aru = self->high_seq = self->gc_floor = 0;
    return (PyObject *)self;
}

static int
rb_traverse(RBObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->packets);
    return 0;
}

static int
rb_clear_gc(RBObject *self)
{
    Py_CLEAR(self->packets);
    return 0;
}

static void
rb_dealloc(RBObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_CLEAR(self->packets);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* insert(packet) -> bool: the C twin of ReceiveBuffer.insert. */
static PyObject *
rb_insert(RBObject *self, PyObject *packet)
{
    PyObject *seq_obj = PyObject_GetAttr(packet, s_seq);
    if (seq_obj == NULL)
        return NULL;
    long long seq = PyLong_AsLongLong(seq_obj);
    if (seq == -1 && PyErr_Occurred()) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    if (seq <= self->gc_floor) {
        Py_DECREF(seq_obj);
        Py_RETURN_FALSE;
    }
    int dup = PyDict_Contains(self->packets, seq_obj);
    if (dup < 0) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    if (dup) {
        Py_DECREF(seq_obj);
        Py_RETURN_FALSE;
    }
    if (PyDict_SetItem(self->packets, seq_obj, packet) < 0) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    Py_DECREF(seq_obj);
    if (seq > self->high_seq)
        self->high_seq = seq;
    if (seq == self->my_aru + 1) {
        long long aru = seq;
        for (;;) {
            PyObject *probe = PyLong_FromLongLong(aru + 1);
            if (probe == NULL)
                return NULL;
            int present = PyDict_Contains(self->packets, probe);
            Py_DECREF(probe);
            if (present < 0)
                return NULL;
            if (!present)
                break;
            aru++;
        }
        self->my_aru = aru;
    }
    Py_RETURN_TRUE;
}

static PyObject *
rb_has(RBObject *self, PyObject *seq_obj)
{
    long long seq = PyLong_AsLongLong(seq_obj);
    if (seq == -1 && PyErr_Occurred())
        return NULL;
    if (seq <= self->gc_floor || seq <= self->my_aru)
        Py_RETURN_TRUE;
    int present = PyDict_Contains(self->packets, seq_obj);
    if (present < 0)
        return NULL;
    return PyBool_FromLong(present);
}

static PyObject *
rb_get(RBObject *self, PyObject *seq_obj)
{
    PyObject *packet = PyDict_GetItemWithError(self->packets, seq_obj);
    if (packet == NULL) {
        if (PyErr_Occurred())
            return NULL;
        Py_RETURN_NONE;
    }
    return Py_NewRef(packet);
}

static PyObject *
rb_has_gaps_up_to(RBObject *self, PyObject *upto_obj)
{
    long long upto = PyLong_AsLongLong(upto_obj);
    if (upto == -1 && PyErr_Occurred())
        return NULL;
    return PyBool_FromLong(self->my_aru < upto);
}

/* gc_below(seq) -> int: drop packets with sequence <= seq (stable
 * everywhere).  The C twin of ReceiveBuffer.gc_below: same clamp to
 * my_aru, same per-seq pop walk over the dict, same collected count. */
static PyObject *
rb_gc_below(RBObject *self, PyObject *seq_obj)
{
    long long seq = PyLong_AsLongLong(seq_obj);
    if (seq == -1 && PyErr_Occurred())
        return NULL;
    if (seq > self->my_aru)
        seq = self->my_aru;
    if (seq <= self->gc_floor)
        return PyLong_FromLong(0);
    long long collected = 0;
    for (long long s = self->gc_floor + 1; s <= seq; s++) {
        PyObject *key = PyLong_FromLongLong(s);
        if (key == NULL)
            return NULL;
        int present = PyDict_Contains(self->packets, key);
        if (present > 0 && PyDict_DelItem(self->packets, key) == 0) {
            collected++;
        }
        else if (present < 0 || PyErr_Occurred()) {
            Py_DECREF(key);
            return NULL;
        }
        Py_DECREF(key);
    }
    self->gc_floor = seq;
    return PyLong_FromLongLong(collected);
}

static Py_ssize_t
rb_len(RBObject *self)
{
    return PyDict_Size(self->packets);
}

static PyObject *
rb_reduce(RBObject *self, PyObject *unused)
{
    /* (cls, (), (packets, my_aru, high_seq, gc_floor)) — deepcopy/pickle */
    return Py_BuildValue("(O()(OLLL))", Py_TYPE(self), self->packets,
                         self->my_aru, self->high_seq, self->gc_floor);
}

static PyObject *
rb_setstate(RBObject *self, PyObject *state)
{
    PyObject *packets;
    long long aru, high, floor_;
    if (!PyArg_ParseTuple(state, "O!LLL", &PyDict_Type, &packets,
                          &aru, &high, &floor_))
        return NULL;
    Py_XSETREF(self->packets, Py_NewRef(packets));
    self->my_aru = aru;
    self->high_seq = high;
    self->gc_floor = floor_;
    Py_RETURN_NONE;
}

static PyObject *rb_get_my_aru(RBObject *self, void *c)
{ return PyLong_FromLongLong(self->my_aru); }
static PyObject *rb_get_high_seq(RBObject *self, void *c)
{ return PyLong_FromLongLong(self->high_seq); }
static PyObject *rb_get_gc_floor(RBObject *self, void *c)
{ return PyLong_FromLongLong(self->gc_floor); }
static PyObject *rb_get_packets(RBObject *self, void *c)
{ return Py_NewRef(self->packets); }

static int
rb_set_ll(RBObject *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    *(long long *)((char *)self + (Py_ssize_t)closure) = v;
    return 0;
}

static PyGetSetDef rb_getset[] = {
    {"my_aru", (getter)rb_get_my_aru, NULL, NULL, NULL},
    {"high_seq", (getter)rb_get_high_seq, NULL, NULL, NULL},
    {"gc_floor", (getter)rb_get_gc_floor, NULL, NULL, NULL},
    {"_packets", (getter)rb_get_packets, NULL, NULL, NULL},
    {"_my_aru", (getter)rb_get_my_aru, (setter)rb_set_ll, NULL,
     (void *)offsetof(RBObject, my_aru)},
    {"_high_seq", (getter)rb_get_high_seq, (setter)rb_set_ll, NULL,
     (void *)offsetof(RBObject, high_seq)},
    {"_gc_floor", (getter)rb_get_gc_floor, (setter)rb_set_ll, NULL,
     (void *)offsetof(RBObject, gc_floor)},
    {NULL}
};

static PyMethodDef rb_methods[] = {
    {"insert", (PyCFunction)rb_insert, METH_O, "Store a packet; False on duplicate."},
    {"has", (PyCFunction)rb_has, METH_O, "Whether seq was ever received."},
    {"get", (PyCFunction)rb_get, METH_O, "Packet at seq, or None."},
    {"has_gaps_up_to", (PyCFunction)rb_has_gaps_up_to, METH_O,
     "True when some packet <= upto is missing."},
    {"gc_below", (PyCFunction)rb_gc_below, METH_O,
     "Drop packets with sequence <= seq; returns the number collected."},
    {"__reduce__", (PyCFunction)rb_reduce, METH_NOARGS, NULL},
    {"__setstate__", (PyCFunction)rb_setstate, METH_O, NULL},
    {NULL}
};

static PySequenceMethods rb_as_sequence = {
    .sq_length = (lenfunc)rb_len,
};

static PyTypeObject RBType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._fast._corec.ReceiveBuffer",
    .tp_basicsize = sizeof(RBObject),
    .tp_dealloc = (destructor)rb_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC | Py_TPFLAGS_BASETYPE,
    .tp_doc = "Compiled seq-ordered packet store (state in a Python dict).",
    .tp_traverse = (traverseproc)rb_traverse,
    .tp_clear = (inquiry)rb_clear_gc,
    .tp_methods = rb_methods,
    .tp_getset = rb_getset,
    .tp_as_sequence = &rb_as_sequence,
    .tp_new = rb_new,
};

/* ---------------------------------------------------------------------
 * Reassembler: chunk reassembly (see srp/packing.py)
 * ------------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    PyObject *partial;          /* dict: (sender, msg_id) -> [bytes, ...] */
} ReasmObject;

static PyObject *
reasm_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    ReasmObject *self = (ReasmObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->partial = PyDict_New();
    if (self->partial == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    return (PyObject *)self;
}

static int
reasm_traverse(ReasmObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->partial);
    return 0;
}

static int
reasm_clear_gc(ReasmObject *self)
{
    Py_CLEAR(self->partial);
    return 0;
}

static void
reasm_dealloc(ReasmObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_CLEAR(self->partial);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* The shared C core of feed(); sender/chunk are borrowed refs. */
static PyObject *
reasm_feed_impl(ReasmObject *self, PyObject *sender, PyObject *chunk)
{
    PyObject *flags_obj = PyObject_GetAttr(chunk, s_flags);
    if (flags_obj == NULL)
        return NULL;
    long flags = PyLong_AsLong(flags_obj);
    Py_DECREF(flags_obj);
    if (flags == -1 && PyErr_Occurred())
        return NULL;
    if ((flags & 3) == 3)                   /* FLAG_WHOLE: the hot case */
        return PyObject_GetAttr(chunk, s_data);
    PyObject *msg_id = PyObject_GetAttr(chunk, s_msg_id);
    if (msg_id == NULL)
        return NULL;
    PyObject *key = PyTuple_Pack(2, sender, msg_id);
    Py_DECREF(msg_id);
    if (key == NULL)
        return NULL;
    if (flags & 1) {                        /* FLAG_FIRST */
        PyObject *data = PyObject_GetAttr(chunk, s_data);
        if (data == NULL) {
            Py_DECREF(key);
            return NULL;
        }
        PyObject *fragments = PyList_New(1);
        if (fragments == NULL) {
            Py_DECREF(data);
            Py_DECREF(key);
            return NULL;
        }
        PyList_SET_ITEM(fragments, 0, data);    /* steals */
        int r = PyDict_SetItem(self->partial, key, fragments);
        Py_DECREF(fragments);
        Py_DECREF(key);
        if (r < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    PyObject *fragments = PyDict_GetItemWithError(self->partial, key);
    if (fragments == NULL) {
        Py_DECREF(key);
        if (PyErr_Occurred())
            return NULL;
        Py_RETURN_NONE;                     /* FIRST lost to a membership change */
    }
    PyObject *data = PyObject_GetAttr(chunk, s_data);
    if (data == NULL) {
        Py_DECREF(key);
        return NULL;
    }
    int r = PyList_Append(fragments, data);
    Py_DECREF(data);
    if (r < 0) {
        Py_DECREF(key);
        return NULL;
    }
    if (flags & 2) {                        /* FLAG_LAST: complete */
        PyObject *joined = PyObject_CallMethodObjArgs(
            g_empty_bytes, s_join, fragments, NULL);
        if (joined == NULL) {
            Py_DECREF(key);
            return NULL;
        }
        if (PyDict_DelItem(self->partial, key) < 0) {
            Py_DECREF(key);
            Py_DECREF(joined);
            return NULL;
        }
        Py_DECREF(key);
        return joined;
    }
    Py_DECREF(key);
    Py_RETURN_NONE;
}

static PyObject *
reasm_feed(ReasmObject *self, PyObject *args)
{
    PyObject *sender, *chunk;
    if (!PyArg_ParseTuple(args, "OO", &sender, &chunk))
        return NULL;
    return reasm_feed_impl(self, sender, chunk);
}

static PyObject *
reasm_pending_count(ReasmObject *self, PyObject *unused)
{
    return PyLong_FromSsize_t(PyDict_Size(self->partial));
}

static PyObject *
reasm_clear(ReasmObject *self, PyObject *unused)
{
    PyDict_Clear(self->partial);
    Py_RETURN_NONE;
}

static PyObject *
reasm_reduce(ReasmObject *self, PyObject *unused)
{
    return Py_BuildValue("(O()(O))", Py_TYPE(self), self->partial);
}

static PyObject *
reasm_setstate(ReasmObject *self, PyObject *state)
{
    PyObject *partial;
    if (!PyArg_ParseTuple(state, "O!", &PyDict_Type, &partial))
        return NULL;
    Py_XSETREF(self->partial, Py_NewRef(partial));
    Py_RETURN_NONE;
}

static PyObject *reasm_get_partial(ReasmObject *self, void *c)
{ return Py_NewRef(self->partial); }

static PyGetSetDef reasm_getset[] = {
    {"_partial", (getter)reasm_get_partial, NULL, NULL, NULL},
    {NULL}
};

static PyMethodDef reasm_methods[] = {
    {"feed", (PyCFunction)reasm_feed, METH_VARARGS,
     "Feed one chunk; returns the completed payload or None."},
    {"pending_count", (PyCFunction)reasm_pending_count, METH_NOARGS, NULL},
    {"clear", (PyCFunction)reasm_clear, METH_NOARGS, NULL},
    {"__reduce__", (PyCFunction)reasm_reduce, METH_NOARGS, NULL},
    {"__setstate__", (PyCFunction)reasm_setstate, METH_O, NULL},
    {NULL}
};

static PyTypeObject ReasmType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._fast._corec.Reassembler",
    .tp_basicsize = sizeof(ReasmObject),
    .tp_dealloc = (destructor)reasm_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC | Py_TPFLAGS_BASETYPE,
    .tp_doc = "Compiled chunk reassembler (state in a Python dict).",
    .tp_traverse = (traverseproc)reasm_traverse,
    .tp_clear = (inquiry)reasm_clear_gc,
    .tp_methods = reasm_methods,
    .tp_getset = reasm_getset,
    .tp_new = reasm_new,
};

/* ---------------------------------------------------------------------
 * try_deliver(engine): the contiguous delivery sweep
 * ------------------------------------------------------------------- */

/* DeliveredMessage via tuple.__new__(cls, fields) — skips the NamedTuple's
 * Python-level __new__ frame; the instance is indistinguishable. */
static PyObject *
make_delivered(PyObject *fields)
{
    PyObject *onearg = PyTuple_Pack(1, fields);
    if (onearg == NULL)
        return NULL;
    PyObject *msg = PyTuple_Type.tp_new(
        (PyTypeObject *)g_delivered_cls, onearg, NULL);
    Py_DECREF(onearg);
    return msg;
}

static PyObject *
corec_try_deliver(PyObject *self, PyObject *engine)
{
    if (check_bound() < 0)
        return NULL;
    PyObject *config = PyObject_GetAttr(engine, s_config);
    if (config == NULL)
        return NULL;
    PyObject *safe_obj = PyObject_GetAttr(config, s_safe_delivery);
    Py_DECREF(config);
    if (safe_obj == NULL)
        return NULL;
    int safe_delivery = PyObject_IsTrue(safe_obj);
    Py_DECREF(safe_obj);
    if (safe_delivery < 0)
        return NULL;
    long long stable;
    if (attr_as_ll(engine, s_stable_seq, &stable) < 0)
        return NULL;
    PyObject *rb = PyObject_GetAttr(engine, s_recv_buffer);
    if (rb == NULL)
        return NULL;
    int rb_fast = PyObject_TypeCheck(rb, &RBType);
    long long limit;
    if (safe_delivery) {
        limit = stable;
    }
    else if (rb_fast) {
        limit = ((RBObject *)rb)->my_aru;
    }
    else if (attr_as_ll(rb, s_my_aru, &limit) < 0) {
        Py_DECREF(rb);
        return NULL;
    }
    long long delivered;
    if (attr_as_ll(engine, s_delivered_seq, &delivered) < 0) {
        Py_DECREF(rb);
        return NULL;
    }
    if (delivered >= limit) {               /* nothing contiguous to hand up */
        Py_DECREF(rb);
        Py_RETURN_NONE;
    }
    PyObject *reasm = PyObject_GetAttr(engine, s_reassembler);
    PyObject *ring = NULL, *stats = NULL, *on_deliver = NULL;
    PyObject *dlog_messages = NULL;
    if (reasm == NULL)
        goto fail;
    ring = PyObject_GetAttr(engine, s_ring_id);
    if (ring == NULL)
        goto fail;
    stats = PyObject_GetAttr(engine, s_stats);
    if (stats == NULL)
        goto fail;
    on_deliver = PyObject_GetAttr(engine, s_on_deliver);
    if (on_deliver == NULL)
        goto fail;
    /* When the sink is exactly DeliveryLog.on_deliver (the default wiring:
     * one list append per message), append to its ``messages`` list
     * directly instead of paying a Python frame per delivery.  Detected by
     * function identity, so any override or wrapper takes the generic
     * call. */
    if (g_dlog_on_deliver != NULL && PyMethod_Check(on_deliver)
            && PyMethod_GET_FUNCTION(on_deliver) == g_dlog_on_deliver) {
        dlog_messages = PyObject_GetAttr(
            PyMethod_GET_SELF(on_deliver), s_messages);
        if (dlog_messages == NULL)
            goto fail;
        if (!PyList_CheckExact(dlog_messages))
            Py_CLEAR(dlog_messages);        /* unusual sink: generic call */
    }
    int reasm_fast = PyObject_TypeCheck(reasm, &ReasmType);
    /* delivered_in = config_id or packet.ring_id (truthiness, like the
     * pure sweep's ``config_id or ring_id``) */
    int ring_truthy = PyObject_IsTrue(ring);
    if (ring_truthy < 0)
        goto fail;

    while (delivered < limit) {
        long long seq = delivered + 1;
        PyObject *seq_obj = PyLong_FromLongLong(seq);
        if (seq_obj == NULL)
            goto fail;
        PyObject *packet;
        if (rb_fast) {
            packet = PyDict_GetItemWithError(
                ((RBObject *)rb)->packets, seq_obj);
            if (packet == NULL && PyErr_Occurred()) {
                Py_DECREF(seq_obj);
                goto fail;
            }
            Py_XINCREF(packet);
        }
        else {
            packet = PyObject_CallMethodObjArgs(rb, s_get, seq_obj, NULL);
            if (packet == NULL) {
                Py_DECREF(seq_obj);
                goto fail;
            }
            if (packet == Py_None) {
                Py_DECREF(packet);
                packet = NULL;
            }
        }
        if (packet == NULL) {               /* gap: stop at the front */
            Py_DECREF(seq_obj);
            break;
        }
        delivered = seq;
        if (PyObject_SetAttr(engine, s_delivered_seq, seq_obj) < 0) {
            Py_DECREF(seq_obj);
            Py_DECREF(packet);
            goto fail;
        }
        int safe = seq <= stable;
        PyObject *chunks = PyObject_GetAttr(packet, s_chunks);
        if (chunks == NULL || !PyTuple_Check(chunks)) {
            Py_XDECREF(chunks);
            Py_DECREF(seq_obj);
            Py_DECREF(packet);
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_TypeError, "packet.chunks must be a tuple");
            goto fail;
        }
        PyObject *sender = PyObject_GetAttr(packet, s_sender);
        PyObject *pkt_ring = sender ? PyObject_GetAttr(packet, s_ring_id) : NULL;
        if (pkt_ring == NULL) {
            Py_XDECREF(sender);
            Py_DECREF(chunks);
            Py_DECREF(seq_obj);
            Py_DECREF(packet);
            goto fail;
        }
        Py_ssize_t nchunks = PyTuple_GET_SIZE(chunks);
        for (Py_ssize_t i = 0; i < nchunks; i++) {
            PyObject *chunk = PyTuple_GET_ITEM(chunks, i);
            PyObject *kind = PyObject_GetAttr(chunk, s_kind);
            if (kind == NULL)
                goto chunk_fail;
            int is_app = (kind == g_chunk_app);
            Py_DECREF(kind);
            if (!is_app)
                continue;                   /* recovery chunks absorbed on receipt */
            PyObject *payload;
            if (reasm_fast)
                payload = reasm_feed_impl((ReasmObject *)reasm, sender, chunk);
            else
                payload = PyObject_CallMethodObjArgs(
                    reasm, s_feed, sender, chunk, NULL);
            if (payload == NULL)
                goto chunk_fail;
            if (payload == Py_None) {
                Py_DECREF(payload);
                continue;
            }
            if (attr_add_ll(stats, s_msgs_delivered, 1) < 0
                    || attr_add_ll(stats, s_bytes_delivered,
                                   (long long)PyBytes_GET_SIZE(payload)) < 0) {
                Py_DECREF(payload);
                goto chunk_fail;
            }
            PyObject *fields = PyTuple_Pack(
                6, sender, seq_obj, payload, pkt_ring,
                safe ? Py_True : Py_False, ring_truthy ? ring : pkt_ring);
            Py_DECREF(payload);
            if (fields == NULL)
                goto chunk_fail;
            PyObject *msg = make_delivered(fields);
            Py_DECREF(fields);
            if (msg == NULL)
                goto chunk_fail;
            if (dlog_messages != NULL) {
                int ar = PyList_Append(dlog_messages, msg);
                Py_DECREF(msg);
                if (ar < 0)
                    goto chunk_fail;
            }
            else {
                PyObject *res = PyObject_CallOneArg(on_deliver, msg);
                Py_DECREF(msg);
                if (res == NULL)
                    goto chunk_fail;
                Py_DECREF(res);
            }
            continue;
        chunk_fail:
            Py_DECREF(sender);
            Py_DECREF(pkt_ring);
            Py_DECREF(chunks);
            Py_DECREF(seq_obj);
            Py_DECREF(packet);
            goto fail;
        }
        Py_DECREF(sender);
        Py_DECREF(pkt_ring);
        Py_DECREF(chunks);
        Py_DECREF(seq_obj);
        Py_DECREF(packet);
    }
    Py_DECREF(rb);
    Py_DECREF(reasm);
    Py_DECREF(ring);
    Py_DECREF(stats);
    Py_DECREF(on_deliver);
    Py_XDECREF(dlog_messages);
    Py_RETURN_NONE;
fail:
    Py_XDECREF(rb);
    Py_XDECREF(reasm);
    Py_XDECREF(ring);
    Py_XDECREF(stats);
    Py_XDECREF(on_deliver);
    Py_XDECREF(dlog_messages);
    return NULL;
}

/* ---------------------------------------------------------------------
 * apply_batched(engine, packet, network): batch-apply fast path
 * ------------------------------------------------------------------- */

static PyObject *
corec_apply_batched(PyObject *self, PyObject *args)
{
    PyObject *engine, *packet, *network;
    if (!PyArg_ParseTuple(args, "OOO", &engine, &packet, &network))
        return NULL;
    if (check_bound() < 0)
        return NULL;
    PyObject *seq_obj = PyObject_GetAttr(packet, s_seq);
    if (seq_obj == NULL)
        return NULL;
    /* self._pending_applies.discard(packet.seq) */
    PyObject *pending = PyObject_GetAttr(engine, s_pending_applies);
    if (pending == NULL) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    PyObject *res = PyObject_CallMethodObjArgs(pending, s_discard,
                                               seq_obj, NULL);
    Py_DECREF(pending);
    if (res == NULL) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    Py_DECREF(res);
    /* if self._stopped: return  (dead incarnation) */
    PyObject *stopped = PyObject_GetAttr(engine, s_stopped);
    if (stopped == NULL) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    int is_stopped = PyObject_IsTrue(stopped);
    Py_DECREF(stopped);
    if (is_stopped < 0) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    if (is_stopped) {
        Py_DECREF(seq_obj);
        Py_RETURN_NONE;
    }
    /* Resolve the ring buffer by the identity/memo fast path.  Anything
     * else (old ring, foreign ring) is rare: bail to Python on_data. */
    PyObject *rid = PyObject_GetAttr(packet, s_ring_id);
    if (rid == NULL) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    PyObject *my_ring = PyObject_GetAttr(engine, s_ring_id);
    if (my_ring == NULL) {
        Py_DECREF(rid);
        Py_DECREF(seq_obj);
        return NULL;
    }
    int fast_ring = (rid == my_ring);
    PyObject *aliases = NULL;
    if (!fast_ring) {
        aliases = PyObject_GetAttr(engine, s_ring_aliases);
        if (aliases == NULL)
            goto ring_fail;
        PyObject *key = PyLong_FromVoidPtr((void *)rid);
        if (key == NULL)
            goto ring_fail;
        int memoed = PyDict_Contains(aliases, key);
        if (memoed < 0) {
            Py_DECREF(key);
            goto ring_fail;
        }
        if (memoed) {
            fast_ring = 1;
        }
        else {
            int eq = PyObject_RichCompareBool(rid, my_ring, Py_EQ);
            if (eq < 0) {
                Py_DECREF(key);
                goto ring_fail;
            }
            if (eq) {
                /* memoize: _ring_aliases[id(ring_id)] = ring_id */
                if (PyDict_SetItem(aliases, key, rid) < 0) {
                    Py_DECREF(key);
                    goto ring_fail;
                }
                fast_ring = 1;
            }
        }
        Py_DECREF(key);
    }
    Py_XDECREF(aliases);
    aliases = NULL;
    Py_DECREF(my_ring);
    Py_DECREF(rid);
    if (!fast_ring) {
        /* Old-ring straggler or foreign traffic: the pure path handles
         * membership consequences (stats accounting happens there). */
        Py_DECREF(seq_obj);
        return PyObject_CallMethodObjArgs(
            engine, s_on_data, packet, network, Py_False, NULL);
    }
    /* --- current-ring fast path (mirrors on_data with deliver=False) --- */
    PyObject *stats = PyObject_GetAttr(engine, s_stats);
    if (stats == NULL) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    if (attr_add_ll(stats, s_packets_received, 1) < 0) {
        Py_DECREF(stats);
        Py_DECREF(seq_obj);
        return NULL;
    }
    PyObject *rb = PyObject_GetAttr(engine, s_recv_buffer);
    if (rb == NULL) {
        Py_DECREF(stats);
        Py_DECREF(seq_obj);
        return NULL;
    }
    PyObject *inserted_obj;
    if (PyObject_TypeCheck(rb, &RBType))
        inserted_obj = rb_insert((RBObject *)rb, packet);
    else
        inserted_obj = PyObject_CallMethodObjArgs(rb, s_insert, packet, NULL);
    Py_DECREF(rb);
    if (inserted_obj == NULL) {
        Py_DECREF(stats);
        Py_DECREF(seq_obj);
        return NULL;
    }
    int inserted = PyObject_IsTrue(inserted_obj);
    Py_DECREF(inserted_obj);
    if (inserted < 0) {
        Py_DECREF(stats);
        Py_DECREF(seq_obj);
        return NULL;
    }
    if (!inserted) {
        int r = attr_add_ll(stats, s_duplicate_packets, 1);
        Py_DECREF(stats);
        Py_DECREF(seq_obj);
        if (r < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    Py_DECREF(stats);
    /* Token-retransmit evidence: packet.seq > last_token.seq means the
     * successor got our token (paper §2). */
    PyObject *last_token = PyObject_GetAttr(engine, s_last_token);
    if (last_token == NULL) {
        Py_DECREF(seq_obj);
        return NULL;
    }
    if (last_token != Py_None) {
        PyObject *tok_seq = PyObject_GetAttr(last_token, s_seq);
        if (tok_seq == NULL) {
            Py_DECREF(last_token);
            Py_DECREF(seq_obj);
            return NULL;
        }
        int gt = PyObject_RichCompareBool(seq_obj, tok_seq, Py_GT);
        Py_DECREF(tok_seq);
        if (gt < 0) {
            Py_DECREF(last_token);
            Py_DECREF(seq_obj);
            return NULL;
        }
        if (gt) {
            /* `if self._token_retrans_timer is not None:` inlined — the
             * timer is armed at most once per rotation, so on almost every
             * packet this is a no-op and the method call can be skipped. */
            PyObject *timer = PyObject_GetAttr(engine, s_retrans_timer);
            if (timer == NULL) {
                Py_DECREF(last_token);
                Py_DECREF(seq_obj);
                return NULL;
            }
            int armed = timer != Py_None;
            Py_DECREF(timer);
            if (armed) {
                PyObject *r = PyObject_CallMethodObjArgs(
                    engine, s_cancel_retrans, NULL);
                if (r == NULL) {
                    Py_DECREF(last_token);
                    Py_DECREF(seq_obj);
                    return NULL;
                }
                Py_DECREF(r);
            }
        }
    }
    Py_DECREF(last_token);
    Py_DECREF(seq_obj);
    /* RECOVERY absorbs progress; otherwise deliver=False means done. */
    PyObject *state = PyObject_GetAttr(engine, s_state);
    if (state == NULL)
        return NULL;
    int in_recovery = (state == g_state_recovery);
    Py_DECREF(state);
    if (in_recovery) {
        PyObject *r = PyObject_CallMethodObjArgs(
            engine, s_absorb_recovery, NULL);
        if (r == NULL)
            return NULL;
        Py_DECREF(r);
    }
    Py_RETURN_NONE;

ring_fail:
    Py_XDECREF(aliases);
    Py_DECREF(my_ring);
    Py_DECREF(rid);
    Py_DECREF(seq_obj);
    return NULL;
}

/* ---------------------------------------------------------------------
 * packet construction (Chunk / DataPacket / BatchPacket)
 *
 * The wire classes are frozen dataclasses; their generated __init__ is a
 * Python frame doing one object.__setattr__ per field.  The C constructors
 * allocate via tp_new and write the fields with PyObject_GenericSetAttr —
 * exactly what object.__setattr__ does — so the resulting instances are
 * indistinguishable (same type, same __dict__, same eq/hash/repr).
 * ------------------------------------------------------------------- */

static PyObject *
plain_new(PyObject *cls)
{
    PyTypeObject *tp = (PyTypeObject *)cls;
    return tp->tp_new(tp, g_empty_tuple, NULL);
}

/* Chunk(kind, msg_id, flags, data); all arguments borrowed. */
static PyObject *
make_chunk(PyObject *kind, PyObject *msg_id, PyObject *flags, PyObject *data)
{
    PyObject *obj = plain_new(g_chunk_cls);
    if (obj == NULL)
        return NULL;
    if (PyObject_GenericSetAttr(obj, s_kind, kind) < 0
            || PyObject_GenericSetAttr(obj, s_msg_id, msg_id) < 0
            || PyObject_GenericSetAttr(obj, s_flags, flags) < 0
            || PyObject_GenericSetAttr(obj, s_data, data) < 0) {
        Py_DECREF(obj);
        return NULL;
    }
    return obj;
}

/* DataPacket(sender, ring_id, seq, chunks); ws is the precomputed wire
 * size (or Py_None to leave the lazy cache unset, as decode does).
 * `_wire_size` is excluded from ==/hash/repr and from digests, so eager
 * caching is unobservable. */
static PyObject *
make_data_packet(PyObject *sender, PyObject *ring, PyObject *seq,
                 PyObject *chunks, PyObject *ws)
{
    PyObject *obj = plain_new(g_data_cls);
    if (obj == NULL)
        return NULL;
    if (PyObject_GenericSetAttr(obj, s_sender, sender) < 0
            || PyObject_GenericSetAttr(obj, s_ring_id, ring) < 0
            || PyObject_GenericSetAttr(obj, s_seq, seq) < 0
            || PyObject_GenericSetAttr(obj, s_chunks, chunks) < 0
            || PyObject_GenericSetAttr(obj, s_wire_size_attr, ws) < 0) {
        Py_DECREF(obj);
        return NULL;
    }
    return obj;
}

static PyObject *
make_batch_packet(PyObject *packets, PyObject *ws)
{
    PyObject *obj = plain_new(g_batch_cls);
    if (obj == NULL)
        return NULL;
    if (PyObject_GenericSetAttr(obj, s_packets, packets) < 0
            || PyObject_GenericSetAttr(obj, s_wire_size_attr, ws) < 0) {
        Py_DECREF(obj);
        return NULL;
    }
    return obj;
}

/* ---------------------------------------------------------------------
 * Packer.next_batch fast path (see srp/packing.py)
 *
 * Operates on the packer's ordinary state (`_queue._queue` deque,
 * `_queue._bytes`, `_next_msg_id`, `_partial`) through generic attribute
 * access.  The whole-message greedy fill runs in C; anything touching
 * fragmentation (an in-flight `_partial`, or a message larger than one
 * packet) delegates that packet slot to the packer's own
 * `next_packet_chunks`, keeping the rare logic in one (Python) place.
 * ------------------------------------------------------------------- */

/* packer._allocate_msg_id() as a C read-modify-write. */
static PyObject *
alloc_msg_id(PyObject *packer)
{
    long long msg_id;
    if (attr_as_ll(packer, s_next_msg_id, &msg_id) < 0)
        return NULL;
    long long next = (msg_id + 1) & 0xFFFFFFFFLL;
    if (next == 0)
        next = 1;
    if (attr_set_ll(packer, s_next_msg_id, next) < 0)
        return NULL;
    return PyLong_FromLongLong(msg_id);
}

/* Returns a new list of chunk lists (possibly empty). */
static PyObject *
packer_next_batch_impl(PyObject *packer, long long max_packets)
{
    PyObject *batch = NULL, *sq = NULL, *dq = NULL, *chunks = NULL;
    long long max_payload;

    if ((batch = PyList_New(0)) == NULL)
        return NULL;
    if ((sq = PyObject_GetAttr(packer, s_queue)) == NULL)
        goto fail;
    if ((dq = PyObject_GetAttr(sq, s_queue)) == NULL)
        goto fail;
    if (attr_as_ll(packer, s_max_payload, &max_payload) < 0)
        goto fail;
    PyObject *packing_obj = PyObject_GetAttr(packer, s_enable_packing);
    if (packing_obj == NULL)
        goto fail;
    int packing = PyObject_IsTrue(packing_obj);
    Py_DECREF(packing_obj);
    if (packing < 0)
        goto fail;

    while (PyList_GET_SIZE(batch) < max_packets) {
        PyObject *partial = PyObject_GetAttr(packer, s_partial);
        if (partial == NULL)
            goto fail;
        int resuming = (partial != Py_None);
        Py_DECREF(partial);
        if (resuming) {
            /* In-flight fragmented message: its next fragment must lead
             * this packet — delegate the slot to the Python packer. */
            chunks = PyObject_CallMethodNoArgs(packer, s_next_packet_chunks);
            if (chunks == NULL)
                goto fail;
        }
        else {
            long long budget = max_payload;
            if ((chunks = PyList_New(0)) == NULL)
                goto fail;
            for (;;) {
                Py_ssize_t pending = PyObject_Size(dq);
                if (pending < 0)
                    goto fail;
                if (pending == 0)
                    break;
                PyObject *payload = PySequence_GetItem(dq, 0);
                if (payload == NULL)
                    goto fail;
                Py_ssize_t plen = PyObject_Size(payload);
                if (plen < 0) {
                    Py_DECREF(payload);
                    goto fail;
                }
                long long need = g_chunk_hdr + plen;
                if (need > budget) {
                    Py_DECREF(payload);
                    if (PyList_GET_SIZE(chunks) > 0)
                        break;          /* start the next packet instead */
                    /* Message alone exceeds a packet: fragmentation —
                     * delegate this whole slot (nothing consumed yet). */
                    Py_CLEAR(chunks);
                    chunks = PyObject_CallMethodNoArgs(
                        packer, s_next_packet_chunks);
                    if (chunks == NULL)
                        goto fail;
                    break;
                }
                /* queue.dequeue(): popleft + byte-count update */
                PyObject *popped = PyObject_CallMethodNoArgs(dq, s_popleft);
                if (popped == NULL) {
                    Py_DECREF(payload);
                    goto fail;
                }
                Py_DECREF(popped);
                if (attr_add_ll(sq, s_bytes, -(long long)plen) < 0) {
                    Py_DECREF(payload);
                    goto fail;
                }
                PyObject *msg_id = alloc_msg_id(packer);
                if (msg_id == NULL) {
                    Py_DECREF(payload);
                    goto fail;
                }
                PyObject *chunk = make_chunk(g_chunk_app, msg_id,
                                             g_flag_whole, payload);
                Py_DECREF(msg_id);
                Py_DECREF(payload);
                if (chunk == NULL)
                    goto fail;
                int r = PyList_Append(chunks, chunk);
                Py_DECREF(chunk);
                if (r < 0)
                    goto fail;
                budget -= need;
                if (!packing)
                    break;
            }
        }
        Py_ssize_t produced = PyObject_Size(chunks);
        if (produced < 0)
            goto fail;
        if (produced == 0) {
            Py_CLEAR(chunks);
            break;
        }
        int r = PyList_Append(batch, chunks);
        Py_CLEAR(chunks);
        if (r < 0)
            goto fail;
    }
    Py_DECREF(sq);
    Py_DECREF(dq);
    return batch;

fail:
    Py_XDECREF(batch);
    Py_XDECREF(sq);
    Py_XDECREF(dq);
    Py_XDECREF(chunks);
    return NULL;
}

/* next_batch(packer, max_packets) — module-level twin of
 * Packer.next_batch for tests and the engine fast path. */
static PyObject *
corec_packer_next_batch(PyObject *self, PyObject *args)
{
    PyObject *packer;
    long long max_packets;
    if (!PyArg_ParseTuple(args, "OL", &packer, &max_packets))
        return NULL;
    if (check_bound() < 0)
        return NULL;
    return packer_next_batch_impl(packer, max_packets);
}

/* ---------------------------------------------------------------------
 * broadcast_batched(engine, token, allowance): the token-visit send path
 * (see TotemSrp._broadcast_batched)
 * ------------------------------------------------------------------- */

static PyObject *
corec_broadcast_batched(PyObject *self, PyObject *args)
{
    PyObject *engine, *token;
    long long allowance;
    if (!PyArg_ParseTuple(args, "OOL", &engine, &token, &allowance))
        return NULL;
    if (check_bound() < 0)
        return NULL;

    PyObject *packer = PyObject_GetAttr(engine, s_packer);
    if (packer == NULL)
        return NULL;
    long long cap = allowance < g_batch_max ? allowance : g_batch_max;
    PyObject *lists = packer_next_batch_impl(packer, cap);
    Py_DECREF(packer);
    if (lists == NULL)
        return NULL;
    Py_ssize_t n = PyList_GET_SIZE(lists);
    if (n == 0) {
        Py_DECREF(lists);
        return PyLong_FromLong(0);
    }

    PyObject *node_id = NULL, *ring = NULL, *rb = NULL, *packets = NULL,
        *stats = NULL, *transport = NULL;
    long long seq;
    if ((node_id = PyObject_GetAttr(engine, s_node_id)) == NULL)
        goto fail;
    if ((ring = PyObject_GetAttr(engine, s_ring_id)) == NULL)
        goto fail;
    if (attr_as_ll(token, s_seq, &seq) < 0)
        goto fail;
    if ((rb = PyObject_GetAttr(engine, s_recv_buffer)) == NULL)
        goto fail;
    int rb_fast = PyObject_TypeCheck(rb, &RBType);
    if ((packets = PyList_New(n)) == NULL)
        goto fail;

    long long packets_ws = 0;       /* Σ per-packet wire sizes (for batch) */
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *chunk_list = PyList_GET_ITEM(lists, i);
        PyObject *chunks = PySequence_Tuple(chunk_list);
        if (chunks == NULL)
            goto fail;
        /* wire size: CHUNK_HEADER_BYTES per chunk + payload bytes */
        Py_ssize_t nc = PyTuple_GET_SIZE(chunks);
        long long ws = g_chunk_hdr * nc;
        for (Py_ssize_t c = 0; c < nc; c++) {
            PyObject *data = PyObject_GetAttr(PyTuple_GET_ITEM(chunks, c),
                                              s_data);
            if (data == NULL) {
                Py_DECREF(chunks);
                goto fail;
            }
            Py_ssize_t dlen = PyObject_Size(data);
            Py_DECREF(data);
            if (dlen < 0) {
                Py_DECREF(chunks);
                goto fail;
            }
            ws += dlen;
        }
        packets_ws += ws;
        seq += 1;
        PyObject *seq_obj = PyLong_FromLongLong(seq);
        PyObject *ws_obj = seq_obj ? PyLong_FromLongLong(ws) : NULL;
        PyObject *packet = ws_obj ? make_data_packet(node_id, ring, seq_obj,
                                                     chunks, ws_obj) : NULL;
        Py_XDECREF(seq_obj);
        Py_XDECREF(ws_obj);
        Py_DECREF(chunks);
        if (packet == NULL)
            goto fail;
        PyObject *inserted;
        if (rb_fast)
            inserted = rb_insert((RBObject *)rb, packet);
        else
            inserted = PyObject_CallMethodObjArgs(rb, s_insert, packet, NULL);
        if (inserted == NULL) {
            Py_DECREF(packet);
            goto fail;
        }
        Py_DECREF(inserted);
        PyList_SET_ITEM(packets, i, packet);    /* steals */
    }
    Py_DECREF(lists);
    lists = NULL;

    if (attr_set_ll(token, s_seq, seq) < 0)
        goto fail_nolists;
    if ((stats = PyObject_GetAttr(engine, s_stats)) == NULL)
        goto fail_nolists;
    if (attr_add_ll(stats, s_packets_broadcast, n) < 0)
        goto fail_nolists;
    Py_CLEAR(stats);
    if ((transport = PyObject_GetAttr(engine, s_transport)) == NULL)
        goto fail_nolists;

    PyObject *sent;
    if (n == 1) {
        sent = PyObject_CallMethodObjArgs(
            transport, s_broadcast_data, PyList_GET_ITEM(packets, 0), NULL);
    }
    else {
        PyObject *ptuple = PyList_AsTuple(packets);
        if (ptuple == NULL)
            goto fail_nolists;
        PyObject *bws = PyLong_FromLongLong(
            g_batch_base + g_batch_sub * n + packets_ws);
        PyObject *bp = bws ? make_batch_packet(ptuple, bws) : NULL;
        Py_XDECREF(bws);
        Py_DECREF(ptuple);
        if (bp == NULL)
            goto fail_nolists;
        sent = PyObject_CallMethodObjArgs(transport, s_broadcast_batch,
                                          bp, NULL);
        Py_DECREF(bp);
    }
    if (sent == NULL)
        goto fail_nolists;
    Py_DECREF(sent);
    Py_DECREF(transport);
    Py_DECREF(packets);
    Py_DECREF(rb);
    Py_DECREF(ring);
    Py_DECREF(node_id);
    return PyLong_FromLongLong(n);

fail:
    Py_XDECREF(lists);
fail_nolists:
    Py_XDECREF(node_id);
    Py_XDECREF(ring);
    Py_XDECREF(rb);
    Py_XDECREF(packets);
    Py_XDECREF(stats);
    Py_XDECREF(transport);
    return NULL;
}

/* ---------------------------------------------------------------------
 * on_batch(engine, batch, network): unpack a frame train into posted
 * per-packet applies (see TotemSrp.on_batch)
 * ------------------------------------------------------------------- */

static PyObject *
corec_on_batch(PyObject *self, PyObject *args)
{
    PyObject *engine, *batch, *network;
    if (!PyArg_ParseTuple(args, "OOO", &engine, &batch, &network))
        return NULL;
    if (check_bound() < 0)
        return NULL;

    PyObject *packets = NULL, *pending = NULL, *apply_one = NULL,
        *ready = NULL;
    if ((packets = PyObject_GetAttr(batch, s_packets)) == NULL)
        goto fail;
    if ((pending = PyObject_GetAttr(engine, s_pending_applies)) == NULL)
        goto fail;
    int pend_set = PyAnySet_Check(pending);
    if ((apply_one = PyObject_GetAttr(engine, s_apply_batched)) == NULL)
        goto fail;
    if ((ready = PyList_New(0)) == NULL)
        goto fail;

    Py_ssize_t n = PySequence_Size(packets);
    if (n < 0)
        goto fail;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *packet = PySequence_GetItem(packets, i);
        if (packet == NULL)
            goto fail;
        PyObject *seq_obj = PyObject_GetAttr(packet, s_seq);
        if (seq_obj == NULL) {
            Py_DECREF(packet);
            goto fail;
        }
        int seen = pend_set ? PySet_Contains(pending, seq_obj)
                            : PySequence_Contains(pending, seq_obj);
        if (seen < 0) {
            Py_DECREF(seq_obj);
            Py_DECREF(packet);
            goto fail;
        }
        if (seen) {
            /* A copy from a redundant network is already queued. */
            Py_DECREF(seq_obj);
            Py_DECREF(packet);
            continue;
        }
        int r;
        if (pend_set) {
            r = PySet_Add(pending, seq_obj);
        }
        else {
            PyObject *added = PyObject_CallMethodObjArgs(pending, s_add,
                                                         seq_obj, NULL);
            r = added == NULL ? -1 : 0;
            Py_XDECREF(added);
        }
        Py_DECREF(seq_obj);
        if (r < 0) {
            Py_DECREF(packet);
            goto fail;
        }
        PyObject *cargs = PyTuple_Pack(2, packet, network);
        Py_DECREF(packet);
        if (cargs == NULL)
            goto fail;
        PyObject *pair = PyTuple_Pack(2, apply_one, cargs);
        Py_DECREF(cargs);
        if (pair == NULL)
            goto fail;
        r = PyList_Append(ready, pair);
        Py_DECREF(pair);
        if (r < 0)
            goto fail;
    }

    if (PyList_GET_SIZE(ready) > 0) {
        PyObject *after = PyObject_GetAttr(engine, s_deliver_after);
        if (after == NULL)
            goto fail;
        PyObject *pair = PyTuple_Pack(2, after, g_empty_tuple);
        Py_DECREF(after);
        if (pair == NULL)
            goto fail;
        int r = PyList_Append(ready, pair);
        Py_DECREF(pair);
        if (r < 0)
            goto fail;
        PyObject *runtime = PyObject_GetAttr(engine, s_runtime);
        if (runtime == NULL)
            goto fail;
        PyObject *res = PyObject_CallMethodObjArgs(runtime, s_drain_now,
                                                   ready, NULL);
        Py_DECREF(runtime);
        if (res == NULL)
            goto fail;
        Py_DECREF(res);
    }
    Py_DECREF(packets);
    Py_DECREF(pending);
    Py_DECREF(apply_one);
    Py_DECREF(ready);
    Py_RETURN_NONE;

fail:
    Py_XDECREF(packets);
    Py_XDECREF(pending);
    Py_XDECREF(apply_one);
    Py_XDECREF(ready);
    return NULL;
}

/* ---------------------------------------------------------------------
 * is_duplicate_batch(engine, batch) -> bool | NotImplemented
 * (see TotemSrp.is_duplicate_batch; NotImplemented = bail to Python)
 * ------------------------------------------------------------------- */

/* Whether `rid` names the engine's current ring, via the same
 * identity / alias-memo / == ladder as _buffer_for_ring.
 * 1 = current, 0 = something else (old ring / foreign), -1 = error. */
static int
ring_is_current(PyObject *engine, PyObject *rid)
{
    PyObject *my_ring = PyObject_GetAttr(engine, s_ring_id);
    if (my_ring == NULL)
        return -1;
    if (rid == my_ring) {
        Py_DECREF(my_ring);
        return 1;
    }
    int result = -1;
    PyObject *aliases = PyObject_GetAttr(engine, s_ring_aliases);
    if (aliases == NULL)
        goto done;
    PyObject *key = PyLong_FromVoidPtr((void *)rid);
    if (key == NULL)
        goto done;
    int memoed = PyDict_Contains(aliases, key);
    if (memoed < 0) {
        Py_DECREF(key);
        goto done;
    }
    if (memoed) {
        Py_DECREF(key);
        result = 1;
        goto done;
    }
    int eq = PyObject_RichCompareBool(rid, my_ring, Py_EQ);
    if (eq < 0) {
        Py_DECREF(key);
        goto done;
    }
    if (eq && PyDict_SetItem(aliases, key, rid) < 0) {
        Py_DECREF(key);
        goto done;
    }
    Py_DECREF(key);
    result = eq ? 1 : 0;
done:
    Py_XDECREF(aliases);
    Py_DECREF(my_ring);
    return result;
}

static PyObject *
corec_is_duplicate_batch(PyObject *self, PyObject *args)
{
    PyObject *engine, *batch;
    if (!PyArg_ParseTuple(args, "OO", &engine, &batch))
        return NULL;
    if (check_bound() < 0)
        return NULL;
    PyObject *rid = PyObject_GetAttr(batch, s_ring_id);
    if (rid == NULL)
        return NULL;
    int current = ring_is_current(engine, rid);
    Py_DECREF(rid);
    if (current < 0)
        return NULL;
    if (!current)
        Py_RETURN_NOTIMPLEMENTED;   /* old/foreign ring: Python decides */

    PyObject *packets = NULL, *pending = NULL, *rb = NULL;
    if ((packets = PyObject_GetAttr(batch, s_packets)) == NULL)
        goto fail;
    if ((pending = PyObject_GetAttr(engine, s_pending_applies)) == NULL)
        goto fail;
    int pend_set = PyAnySet_Check(pending);
    if ((rb = PyObject_GetAttr(engine, s_recv_buffer)) == NULL)
        goto fail;
    int rb_fast = PyObject_TypeCheck(rb, &RBType);

    Py_ssize_t n = PySequence_Size(packets);
    if (n < 0)
        goto fail;
    int all_seen = 1;
    for (Py_ssize_t i = 0; i < n && all_seen; i++) {
        PyObject *packet = PySequence_GetItem(packets, i);
        if (packet == NULL)
            goto fail;
        PyObject *seq_obj = PyObject_GetAttr(packet, s_seq);
        Py_DECREF(packet);
        if (seq_obj == NULL)
            goto fail;
        int seen;
        if (rb_fast) {
            PyObject *h = rb_has((RBObject *)rb, seq_obj);
            seen = h == NULL ? -1 : PyObject_IsTrue(h);
            Py_XDECREF(h);
        }
        else {
            PyObject *h = PyObject_CallMethodObjArgs(rb, s_has, seq_obj,
                                                     NULL);
            seen = h == NULL ? -1 : PyObject_IsTrue(h);
            Py_XDECREF(h);
        }
        if (seen == 0) {
            seen = pend_set ? PySet_Contains(pending, seq_obj)
                            : PySequence_Contains(pending, seq_obj);
        }
        Py_DECREF(seq_obj);
        if (seen < 0)
            goto fail;
        all_seen = seen;
    }
    Py_DECREF(packets);
    Py_DECREF(pending);
    Py_DECREF(rb);
    return PyBool_FromLong(all_seen);

fail:
    Py_XDECREF(packets);
    Py_XDECREF(pending);
    Py_XDECREF(rb);
    return NULL;
}

/* ---------------------------------------------------------------------
 * wire codec: DATA / BATCH encode + decode (see wire/codec.py)
 *
 * Only the two data-plane packet kinds are compiled; control traffic
 * (TOKEN / JOIN / COMMIT_TOKEN) is rare and returns NotImplemented so
 * codec.py falls through to the pure implementation.  The byte layout
 * constants below mirror codec.py's struct formats; the accel-equivalence
 * tests compare pure and compiled encodings byte for byte, so drift is
 * caught immediately.
 * ------------------------------------------------------------------- */

#define CODEC_MAGIC   0x746D        /* "tm" */
#define CODEC_VERSION 1
#define CODEC_HDR     4             /* >HBB */
#define CODEC_CRC     4             /* >I */
#define PTYPE_DATA    1
#define PTYPE_BATCH   5

/* CRC-32 (IEEE, reflected) — identical to zlib.crc32. */
static unsigned int g_crc_table[256];

static void
crc_table_init(void)
{
    for (unsigned int i = 0; i < 256; i++) {
        unsigned int c = i;
        for (int k = 0; k < 8; k++)
            c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
        g_crc_table[i] = c;
    }
}

static unsigned int
crc32_of(const unsigned char *buf, Py_ssize_t len)
{
    unsigned int c = 0xFFFFFFFFU;
    for (Py_ssize_t i = 0; i < len; i++)
        c = g_crc_table[(c ^ buf[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFU;
}

/* Growable big-endian byte writer. */
typedef struct {
    unsigned char *buf;
    Py_ssize_t len, cap;
} Writer;

static int
writer_reserve(Writer *w, Py_ssize_t extra)
{
    if (w->len + extra <= w->cap)
        return 0;
    Py_ssize_t cap = w->cap ? w->cap * 2 : 256;
    while (cap < w->len + extra)
        cap *= 2;
    unsigned char *nb = PyMem_Realloc(w->buf, cap);
    if (nb == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    w->buf = nb;
    w->cap = cap;
    return 0;
}

static int
w_bytes(Writer *w, const unsigned char *p, Py_ssize_t n)
{
    if (writer_reserve(w, n) < 0)
        return -1;
    memcpy(w->buf + w->len, p, n);
    w->len += n;
    return 0;
}

static int
w_u8(Writer *w, unsigned int v)
{
    unsigned char b = (unsigned char)v;
    return w_bytes(w, &b, 1);
}

static int
w_u16(Writer *w, unsigned int v)
{
    unsigned char b[2] = { (unsigned char)(v >> 8), (unsigned char)v };
    return w_bytes(w, b, 2);
}

static int
w_u32(Writer *w, unsigned long long v)
{
    unsigned char b[4] = { (unsigned char)(v >> 24), (unsigned char)(v >> 16),
                           (unsigned char)(v >> 8), (unsigned char)v };
    return w_bytes(w, b, 4);
}

static int
w_u64(Writer *w, unsigned long long v)
{
    unsigned char b[8] = {
        (unsigned char)(v >> 56), (unsigned char)(v >> 48),
        (unsigned char)(v >> 40), (unsigned char)(v >> 32),
        (unsigned char)(v >> 24), (unsigned char)(v >> 16),
        (unsigned char)(v >> 8), (unsigned char)v };
    return w_bytes(w, b, 8);
}

/* Read attr as unsigned with a range ceiling.  0 ok; -1 error; 1 = value
 * out of the struct field's range (caller bails to Python, which raises
 * the same struct.error the pure codec would). */
static int
attr_as_uint(PyObject *obj, PyObject *name, unsigned long long limit,
             unsigned long long *out)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    if (!PyLong_Check(v)) {
        PyObject *idx = PyNumber_Index(v);
        Py_DECREF(v);
        if (idx == NULL) {
            PyErr_Clear();
            return 1;
        }
        v = idx;
    }
    int neg = Py_SIZE(v) < 0;
    unsigned long long u = PyLong_AsUnsignedLongLong(v);
    Py_DECREF(v);
    if (u == (unsigned long long)-1 && PyErr_Occurred()) {
        PyErr_Clear();
        return 1;
    }
    if (neg || u > limit)
        return 1;
    *out = u;
    return 0;
}

/* Encode one DataPacket body (ring + fixed + chunks) into w.
 * 0 ok; -1 error; 1 = bail to the pure codec. */
static int
encode_data_body(Writer *w, PyObject *packet, int sub_packet)
{
    unsigned long long v;
    int r;
    if (!sub_packet) {
        PyObject *ring = PyObject_GetAttr(packet, s_ring_id);
        if (ring == NULL)
            return -1;
        if ((r = attr_as_uint(ring, s_seq, 0xFFFFFFFFULL, &v)) != 0
                || w_u32(w, v) < 0) {
            Py_DECREF(ring);
            return r ? r : -1;
        }
        if ((r = attr_as_uint(ring, s_representative, 0xFFFFFFFFULL,
                              &v)) != 0
                || w_u32(w, v) < 0) {
            Py_DECREF(ring);
            return r ? r : -1;
        }
        Py_DECREF(ring);
        if ((r = attr_as_uint(packet, s_sender, 0xFFFFFFFFULL, &v)) != 0
                || w_u32(w, v) < 0)
            return r ? r : -1;
        if ((r = attr_as_uint(packet, s_seq, 0xFFFFFFFFFFFFFFFFULL, &v)) != 0
                || w_u64(w, v) < 0)
            return r ? r : -1;
    }
    PyObject *chunks = PyObject_GetAttr(packet, s_chunks);
    if (chunks == NULL)
        return -1;
    if (!PyTuple_Check(chunks)) {
        Py_DECREF(chunks);
        return 1;
    }
    Py_ssize_t nc = PyTuple_GET_SIZE(chunks);
    if (nc > 0xFFFF || w_u16(w, (unsigned int)nc) < 0) {
        Py_DECREF(chunks);
        return nc > 0xFFFF ? 1 : -1;
    }
    for (Py_ssize_t i = 0; i < nc; i++) {
        PyObject *chunk = PyTuple_GET_ITEM(chunks, i);
        unsigned long long kind, flags, msg_id;
        if ((r = attr_as_uint(chunk, s_kind, 0xFFULL, &kind)) != 0
                || (r = attr_as_uint(chunk, s_flags, 0xFFULL, &flags)) != 0
                || (r = attr_as_uint(chunk, s_msg_id, 0xFFFFFFFFULL,
                                     &msg_id)) != 0) {
            Py_DECREF(chunks);
            return r;
        }
        PyObject *data = PyObject_GetAttr(chunk, s_data);
        if (data == NULL) {
            Py_DECREF(chunks);
            return -1;
        }
        if (!PyBytes_Check(data)) {
            Py_DECREF(data);
            Py_DECREF(chunks);
            return 1;
        }
        Py_ssize_t dlen = PyBytes_GET_SIZE(data);
        if (dlen > 0xFFFF) {
            Py_DECREF(data);
            Py_DECREF(chunks);
            return 1;
        }
        if (w_u8(w, (unsigned int)kind) < 0
                || w_u8(w, (unsigned int)flags) < 0
                || w_u32(w, msg_id) < 0
                || w_u16(w, (unsigned int)dlen) < 0
                || w_bytes(w, (unsigned char *)PyBytes_AS_STRING(data),
                           dlen) < 0) {
            Py_DECREF(data);
            Py_DECREF(chunks);
            return -1;
        }
        Py_DECREF(data);
    }
    Py_DECREF(chunks);
    return 0;
}

/* encode(packet) -> bytes | NotImplemented (control kinds, odd values) */
static PyObject *
corec_encode(PyObject *self, PyObject *packet)
{
    if (check_bound() < 0)
        return NULL;
    int is_data = (PyObject *)Py_TYPE(packet) == g_data_cls;
    int is_batch = !is_data && (PyObject *)Py_TYPE(packet) == g_batch_cls;
    if (!is_data && !is_batch)
        Py_RETURN_NOTIMPLEMENTED;

    Writer w = {NULL, 0, 0};
    int r = -1;
    if (w_u16(&w, CODEC_MAGIC) < 0 || w_u8(&w, CODEC_VERSION) < 0
            || w_u8(&w, is_data ? PTYPE_DATA : PTYPE_BATCH) < 0)
        goto out;
    if (is_data) {
        r = encode_data_body(&w, packet, 0);
        if (r != 0)
            goto out;
    }
    else {
        /* packet.validate() first, exactly like the pure path. */
        PyObject *ok = PyObject_CallMethodNoArgs(packet, s_validate);
        if (ok == NULL) {
            r = -1;
            goto out;
        }
        Py_DECREF(ok);
        PyObject *packets = PyObject_GetAttr(packet, s_packets);
        if (packets == NULL) {
            r = -1;
            goto out;
        }
        if (!PyTuple_Check(packets) || PyTuple_GET_SIZE(packets) == 0) {
            Py_DECREF(packets);
            r = 1;
            goto out;
        }
        Py_ssize_t np = PyTuple_GET_SIZE(packets);
        PyObject *first = PyTuple_GET_ITEM(packets, 0);
        PyObject *ring = PyObject_GetAttr(first, s_ring_id);
        if (ring == NULL) {
            Py_DECREF(packets);
            r = -1;
            goto out;
        }
        unsigned long long v;
        if ((r = attr_as_uint(ring, s_seq, 0xFFFFFFFFULL, &v)) != 0
                || w_u32(&w, v) < 0
                || (r = attr_as_uint(ring, s_representative, 0xFFFFFFFFULL,
                                     &v)) != 0
                || w_u32(&w, v) < 0) {
            Py_DECREF(ring);
            Py_DECREF(packets);
            if (r == 0)
                r = -1;
            goto out;
        }
        Py_DECREF(ring);
        if ((r = attr_as_uint(first, s_sender, 0xFFFFFFFFULL, &v)) != 0
                || w_u32(&w, v) < 0
                || (r = attr_as_uint(first, s_seq, 0xFFFFFFFFFFFFFFFFULL,
                                     &v)) != 0
                || w_u64(&w, v) < 0
                || (np > 0xFFFF ? (r = 1) : 0)
                || w_u16(&w, (unsigned int)np) < 0) {
            Py_DECREF(packets);
            if (r == 0)
                r = -1;
            goto out;
        }
        for (Py_ssize_t i = 0; i < np; i++) {
            r = encode_data_body(&w, PyTuple_GET_ITEM(packets, i), 1);
            if (r != 0) {
                Py_DECREF(packets);
                goto out;
            }
        }
        Py_DECREF(packets);
        r = 0;
    }
    if (w_u32(&w, crc32_of(w.buf, w.len)) < 0) {
        r = -1;
        goto out;
    }
    {
        PyObject *result = PyBytes_FromStringAndSize((char *)w.buf, w.len);
        PyMem_Free(w.buf);
        return result;
    }
out:
    PyMem_Free(w.buf);
    if (r == 1)
        Py_RETURN_NOTIMPLEMENTED;
    return NULL;
}

/* Big-endian readers over a bounds-checked cursor. */
typedef struct {
    const unsigned char *buf;
    Py_ssize_t len, pos;
} Reader;

static int
r_need(Reader *r, Py_ssize_t n)
{
    return r->pos + n <= r->len ? 0 : -1;
}

static unsigned int
r_u8(Reader *r)
{
    return r->buf[r->pos++];
}

static unsigned int
r_u16(Reader *r)
{
    unsigned int v = ((unsigned int)r->buf[r->pos] << 8) | r->buf[r->pos + 1];
    r->pos += 2;
    return v;
}

static unsigned long long
r_u32(Reader *r)
{
    unsigned long long v = ((unsigned long long)r->buf[r->pos] << 24)
        | ((unsigned long long)r->buf[r->pos + 1] << 16)
        | ((unsigned long long)r->buf[r->pos + 2] << 8)
        | r->buf[r->pos + 3];
    r->pos += 4;
    return v;
}

static unsigned long long
r_u64(Reader *r)
{
    unsigned long long v = 0;
    for (int i = 0; i < 8; i++)
        v = (v << 8) | r->buf[r->pos + i];
    r->pos += 8;
    return v;
}

/* Parse one chunk vector (count + chunks).  Returns a new tuple, NULL
 * with error set, or NULL with *bail=1 (non-APP chunk kind). */
static PyObject *
decode_chunks(Reader *rd, const char *truncated_msg,
              const char *short_msg, int *bail)
{
    *bail = 0;
    if (r_need(rd, 2) < 0) {
        PyErr_SetString(g_codec_error, short_msg);
        return NULL;
    }
    unsigned int nc = r_u16(rd);
    PyObject *chunks = PyTuple_New(nc);
    if (chunks == NULL)
        return NULL;
    for (unsigned int i = 0; i < nc; i++) {
        if (r_need(rd, 8) < 0) {
            PyErr_SetString(g_codec_error, short_msg);
            Py_DECREF(chunks);
            return NULL;
        }
        unsigned int kind = r_u8(rd);
        unsigned int flags = r_u8(rd);
        unsigned long long msg_id = r_u32(rd);
        unsigned int dlen = r_u16(rd);
        if (kind != 0) {
            /* ENCAPSULATED (recovery traffic): let Python build the
             * enum-typed chunk. */
            *bail = 1;
            Py_DECREF(chunks);
            return NULL;
        }
        if (r_need(rd, dlen) < 0) {
            PyErr_SetString(g_codec_error, truncated_msg);
            Py_DECREF(chunks);
            return NULL;
        }
        PyObject *data = PyBytes_FromStringAndSize(
            (const char *)rd->buf + rd->pos, dlen);
        rd->pos += dlen;
        if (data == NULL) {
            Py_DECREF(chunks);
            return NULL;
        }
        PyObject *msg_id_obj = PyLong_FromUnsignedLongLong(msg_id);
        PyObject *flags_obj = msg_id_obj ? PyLong_FromLong(flags) : NULL;
        PyObject *chunk = flags_obj ? make_chunk(g_chunk_app, msg_id_obj,
                                                 flags_obj, data) : NULL;
        Py_XDECREF(msg_id_obj);
        Py_XDECREF(flags_obj);
        Py_DECREF(data);
        if (chunk == NULL) {
            Py_DECREF(chunks);
            return NULL;
        }
        PyTuple_SET_ITEM(chunks, i, chunk);
    }
    return chunks;
}

static PyObject *
make_ring_id(unsigned long long seq, unsigned long long rep)
{
    PyObject *seq_obj = PyLong_FromUnsignedLongLong(seq);
    PyObject *rep_obj = seq_obj ? PyLong_FromUnsignedLongLong(rep) : NULL;
    PyObject *ring = rep_obj ? PyObject_CallFunctionObjArgs(
        g_ring_cls, seq_obj, rep_obj, NULL) : NULL;
    Py_XDECREF(seq_obj);
    Py_XDECREF(rep_obj);
    return ring;
}

/* decode(data) -> packet | NotImplemented (control kinds / non-bytes). */
static PyObject *
corec_decode(PyObject *self, PyObject *data)
{
    if (check_bound() < 0)
        return NULL;
    if (!PyBytes_Check(data))
        Py_RETURN_NOTIMPLEMENTED;

    Reader rd = {(const unsigned char *)PyBytes_AS_STRING(data),
                 PyBytes_GET_SIZE(data), 0};
    if (rd.len < CODEC_HDR + CODEC_CRC)
        return PyErr_Format(g_codec_error, "packet too short: %zd bytes",
                            rd.len);
    Py_ssize_t body_len = rd.len - CODEC_CRC;
    unsigned int expected =
        ((unsigned int)rd.buf[body_len] << 24)
        | ((unsigned int)rd.buf[body_len + 1] << 16)
        | ((unsigned int)rd.buf[body_len + 2] << 8)
        | rd.buf[body_len + 3];
    unsigned int actual = crc32_of(rd.buf, body_len);
    if (expected != actual)
        return PyErr_Format(g_checksum_error,
                            "CRC mismatch: expected 0x%x, got 0x%x",
                            expected, actual);
    rd.len = body_len;
    unsigned int magic = r_u16(&rd);
    unsigned int version = r_u8(&rd);
    unsigned int ptype = r_u8(&rd);
    if (magic != CODEC_MAGIC)
        return PyErr_Format(g_codec_error, "bad magic 0x%x", magic);
    if (version != CODEC_VERSION)
        return PyErr_Format(g_codec_error, "unsupported version %u", version);
    if (ptype != PTYPE_DATA && ptype != PTYPE_BATCH)
        Py_RETURN_NOTIMPLEMENTED;   /* control kinds: pure codec's job */

    const char *short_msg = ptype == PTYPE_DATA
        ? "truncated or malformed DATA packet"
        : "truncated or malformed BATCH packet";
    if (r_need(&rd, 8 + 14) < 0) {      /* ring (>II) + fixed (>IQH) */
        PyErr_SetString(g_codec_error, short_msg);
        return NULL;
    }
    unsigned long long ring_seq = r_u32(&rd);
    unsigned long long ring_rep = r_u32(&rd);
    unsigned long long sender = r_u32(&rd);
    unsigned long long first_seq = r_u64(&rd);
    /* The trailing u16 of >IQH (chunk count for DATA, packet count for
     * BATCH) is still unconsumed here: decode_chunks reads the DATA one
     * itself; the BATCH branch consumes it explicitly below. */
    int bail = 0;

    if (ptype == PTYPE_DATA) {
        PyObject *chunks = decode_chunks(&rd, "chunk data truncated",
                                         short_msg, &bail);
        if (chunks == NULL) {
            if (bail)
                Py_RETURN_NOTIMPLEMENTED;
            return NULL;
        }
        PyObject *ring = make_ring_id(ring_seq, ring_rep);
        if (ring == NULL) {
            Py_DECREF(chunks);
            return NULL;
        }
        PyObject *sender_obj = PyLong_FromUnsignedLongLong(sender);
        PyObject *seq_obj = sender_obj
            ? PyLong_FromUnsignedLongLong(first_seq) : NULL;
        PyObject *packet = seq_obj ? make_data_packet(
            sender_obj, ring, seq_obj, chunks, Py_None) : NULL;
        Py_XDECREF(sender_obj);
        Py_XDECREF(seq_obj);
        Py_DECREF(ring);
        Py_DECREF(chunks);
        return packet;          /* pure codec ignores trailing bytes too */
    }

    /* BATCH */
    unsigned int count = r_u16(&rd);
    if (count < 1) {
        PyErr_SetString(g_codec_error, "batch carries no packets");
        return NULL;
    }
    if ((long long)count > g_batch_max)
        return PyErr_Format(g_codec_error,
                            "batch carries %u packets (max %lld)",
                            count, g_batch_max);
    PyObject *ring = make_ring_id(ring_seq, ring_rep);
    if (ring == NULL)
        return NULL;
    PyObject *sender_obj = PyLong_FromUnsignedLongLong(sender);
    if (sender_obj == NULL) {
        Py_DECREF(ring);
        return NULL;
    }
    PyObject *packets = PyTuple_New(count);
    if (packets == NULL) {
        Py_DECREF(sender_obj);
        Py_DECREF(ring);
        return NULL;
    }
    for (unsigned int i = 0; i < count; i++) {
        PyObject *chunks = decode_chunks(&rd, "batch chunk data truncated",
                                         short_msg, &bail);
        if (chunks == NULL) {
            Py_DECREF(packets);
            Py_DECREF(sender_obj);
            Py_DECREF(ring);
            if (bail)
                Py_RETURN_NOTIMPLEMENTED;
            return NULL;
        }
        PyObject *seq_obj = PyLong_FromUnsignedLongLong(first_seq + i);
        PyObject *packet = seq_obj ? make_data_packet(
            sender_obj, ring, seq_obj, chunks, Py_None) : NULL;
        Py_XDECREF(seq_obj);
        Py_DECREF(chunks);
        if (packet == NULL) {
            Py_DECREF(packets);
            Py_DECREF(sender_obj);
            Py_DECREF(ring);
            return NULL;
        }
        PyTuple_SET_ITEM(packets, i, packet);
    }
    Py_DECREF(sender_obj);
    Py_DECREF(ring);
    if (rd.pos != rd.len) {
        PyErr_Format(g_codec_error, "batch has %zd trailing bytes",
                     rd.len - rd.pos);
        Py_DECREF(packets);
        return NULL;
    }
    PyObject *batch = make_batch_packet(packets, Py_None);
    Py_DECREF(packets);
    return batch;
}

/* ---------------------------------------------------------------------
 * ReplicationEngine._recv_cost twin (see core/base.py)
 *
 * The receive CPU-cost classifier runs once per arriving frame — the
 * duplicate check (rb_has on the current ring) and the wire-size sum are
 * the hot parts.  Old-ring / foreign traffic and non-data packets that
 * subclass the wire types return NotImplemented so the pure classifier
 * (with its alias ladder) decides; the float expressions below are kept
 * as separate statements so the compiler cannot contract them into FMA
 * forms that round differently from CPython's mul-then-add.
 * ------------------------------------------------------------------- */

/* packet.wire_size() for a DataPacket, with the same lazy `_wire_size`
 * caching as the pure method (the cache field is excluded from ==/repr
 * and digests, so eager filling is unobservable).  -1 on error. */
static long long
data_wire_size(PyObject *packet)
{
    PyObject *cached = PyObject_GetAttr(packet, s_wire_size_attr);
    if (cached == NULL)
        return -1;
    if (cached != Py_None) {
        long long v = PyLong_AsLongLong(cached);
        Py_DECREF(cached);
        if (v == -1 && PyErr_Occurred())
            return -1;
        return v;
    }
    Py_DECREF(cached);
    PyObject *chunks = PyObject_GetAttr(packet, s_chunks);
    if (chunks == NULL)
        return -1;
    if (!PyTuple_Check(chunks)) {
        Py_DECREF(chunks);
        PyErr_SetString(PyExc_TypeError, "packet.chunks must be a tuple");
        return -1;
    }
    Py_ssize_t n = PyTuple_GET_SIZE(chunks);
    long long size = (long long)g_chunk_hdr * n;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *data = PyObject_GetAttr(PyTuple_GET_ITEM(chunks, i),
                                          s_data);
        if (data == NULL) {
            Py_DECREF(chunks);
            return -1;
        }
        Py_ssize_t dlen = PyObject_Size(data);
        Py_DECREF(data);
        if (dlen < 0) {
            Py_DECREF(chunks);
            return -1;
        }
        size += dlen;
    }
    Py_DECREF(chunks);
    PyObject *ws = PyLong_FromLongLong(size);
    if (ws == NULL)
        return -1;
    int sr = PyObject_GenericSetAttr(packet, s_wire_size_attr, ws);
    Py_DECREF(ws);
    return sr < 0 ? -1 : size;
}

/* BatchPacket.wire_size() with the same per-sub-packet + batch caching
 * as the pure method.  -1 on error. */
static long long
batch_wire_size(PyObject *batch)
{
    PyObject *cached = PyObject_GetAttr(batch, s_wire_size_attr);
    if (cached == NULL)
        return -1;
    if (cached != Py_None) {
        long long v = PyLong_AsLongLong(cached);
        Py_DECREF(cached);
        if (v == -1 && PyErr_Occurred())
            return -1;
        return v;
    }
    Py_DECREF(cached);
    PyObject *packets = PyObject_GetAttr(batch, s_packets);
    if (packets == NULL)
        return -1;
    if (!PyTuple_Check(packets)) {
        Py_DECREF(packets);
        PyErr_SetString(PyExc_TypeError, "batch.packets must be a tuple");
        return -1;
    }
    Py_ssize_t n = PyTuple_GET_SIZE(packets);
    long long size = (long long)g_batch_base + (long long)g_batch_sub * n;
    for (Py_ssize_t i = 0; i < n; i++) {
        long long sub = data_wire_size(PyTuple_GET_ITEM(packets, i));
        if (sub < 0) {
            Py_DECREF(packets);
            return -1;
        }
        size += sub;
    }
    Py_DECREF(packets);
    PyObject *ws = PyLong_FromLongLong(size);
    if (ws == NULL)
        return -1;
    int sr = PyObject_GenericSetAttr(batch, s_wire_size_attr, ws);
    Py_DECREF(ws);
    return sr < 0 ? -1 : size;
}

/* Count of chunks in `chunks` (a tuple) carrying FLAG_LAST — each one
 * completes a message and is charged per-message protocol work. */
static long long
count_completed(PyObject *chunks, long long *out)
{
    if (!PyTuple_Check(chunks)) {
        PyErr_SetString(PyExc_TypeError, "packet.chunks must be a tuple");
        return -1;
    }
    long long completed = 0;
    Py_ssize_t n = PyTuple_GET_SIZE(chunks);
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *flags_obj = PyObject_GetAttr(PyTuple_GET_ITEM(chunks, i),
                                               s_flags);
        if (flags_obj == NULL)
            return -1;
        long flags = PyLong_AsLong(flags_obj);
        Py_DECREF(flags_obj);
        if (flags == -1 && PyErr_Occurred())
            return -1;
        if (flags & 2)                      /* FLAG_LAST */
            completed++;
    }
    *out += completed;
    return 0;
}

/* Whether `packet` (a current-ring DataPacket) was already received.
 * 1 / 0, 2 = bail to Python (old/foreign ring), -1 = error. */
static int
recv_cost_is_dup_data(PyObject *srp, PyObject *packet)
{
    PyObject *rid = PyObject_GetAttr(packet, s_ring_id);
    if (rid == NULL)
        return -1;
    int current = ring_is_current(srp, rid);
    Py_DECREF(rid);
    if (current < 0)
        return -1;
    if (!current)
        return 2;
    PyObject *rb = PyObject_GetAttr(srp, s_recv_buffer);
    if (rb == NULL)
        return -1;
    PyObject *seq_obj = PyObject_GetAttr(packet, s_seq);
    if (seq_obj == NULL) {
        Py_DECREF(rb);
        return -1;
    }
    PyObject *h;
    if (PyObject_TypeCheck(rb, &RBType))
        h = rb_has((RBObject *)rb, seq_obj);
    else
        h = PyObject_CallMethodObjArgs(rb, s_has, seq_obj, NULL);
    Py_DECREF(seq_obj);
    Py_DECREF(rb);
    if (h == NULL)
        return -1;
    int dup = PyObject_IsTrue(h);
    Py_DECREF(h);
    return dup;
}

/* The classifier itself: a new float, NotImplemented (new ref) to bail
 * to the pure method, or NULL on error.  `rrp` is the engine bound into
 * stack._recv_cost_fn. */
static PyObject *
recv_cost_impl(PyObject *rrp, PyObject *packet)
{
    PyObject *lan = PyObject_GetAttr(rrp, s_recv_lan);
    if (lan == NULL)
        return NULL;
    if (lan == Py_None) {
        Py_DECREF(lan);
        return PyFloat_FromDouble(0.0);
    }
    int is_data = (Py_TYPE(packet) == (PyTypeObject *)g_data_cls);
    int is_batch = !is_data
        && (Py_TYPE(packet) == (PyTypeObject *)g_batch_cls);
    if (!is_data && !is_batch) {
        /* A subclass of either wire type must take the pure branches. */
        int inst = PyObject_IsInstance(packet, g_data_cls);
        if (inst == 0)
            inst = PyObject_IsInstance(packet, g_batch_cls);
        if (inst != 0) {
            Py_DECREF(lan);
            if (inst < 0)
                return NULL;
            Py_RETURN_NOTIMPLEMENTED;
        }
        /* Control traffic (tokens, joins): flat per-frame + per-byte. */
        PyObject *szo = PyObject_CallMethodNoArgs(packet, s_wire_size_meth);
        if (szo == NULL)
            goto fail;
        double size = PyFloat_AsDouble(szo);
        Py_DECREF(szo);
        if (size == -1.0 && PyErr_Occurred())
            goto fail;
        double per_recv, per_byte;
        if (attr_as_double(lan, s_cpu_recv, &per_recv) < 0
                || attr_as_double(lan, s_cpu_byte_recv, &per_byte) < 0)
            goto fail;
        Py_DECREF(lan);
        double t = per_byte * size;
        return PyFloat_FromDouble(per_recv + t);
    }

    long long size = is_data ? data_wire_size(packet)
                             : batch_wire_size(packet);
    if (size < 0)
        goto fail;
    PyObject *srp = PyObject_GetAttr(rrp, s_srp_attr);
    if (srp == NULL)
        goto fail;
    int dup = 0;
    if (srp != Py_None) {
        if (is_data) {
            dup = recv_cost_is_dup_data(srp, packet);
        }
        else {
            /* Reuse the compiled batch duplicate check (it, too, bails
             * NotImplemented for non-current rings). */
            PyObject *t = PyTuple_Pack(2, srp, packet);
            PyObject *v = t ? corec_is_duplicate_batch(NULL, t) : NULL;
            Py_XDECREF(t);
            if (v == NULL)
                dup = -1;
            else if (v == Py_NotImplemented)
                dup = 2;
            else
                dup = PyObject_IsTrue(v);
            Py_XDECREF(v);
        }
    }
    Py_DECREF(srp);
    if (dup < 0)
        goto fail;
    if (dup == 2) {
        Py_DECREF(lan);
        Py_RETURN_NOTIMPLEMENTED;
    }
    double cost;
    if (dup) {
        double per_dup, per_byte_dup;
        if (attr_as_double(lan, s_cpu_dup, &per_dup) < 0
                || attr_as_double(lan, s_cpu_byte_dup, &per_byte_dup) < 0)
            goto fail;
        double t = per_byte_dup * (double)size;
        cost = per_dup + t;
    }
    else {
        long long completed = 0;
        if (is_data) {
            PyObject *chunks = PyObject_GetAttr(packet, s_chunks);
            int r = chunks ? count_completed(chunks, &completed) : -1;
            Py_XDECREF(chunks);
            if (r < 0)
                goto fail;
        }
        else {
            PyObject *packets = PyObject_GetAttr(packet, s_packets);
            if (packets == NULL || !PyTuple_Check(packets)) {
                Py_XDECREF(packets);
                if (!PyErr_Occurred())
                    PyErr_SetString(PyExc_TypeError,
                                    "batch.packets must be a tuple");
                goto fail;
            }
            Py_ssize_t np = PyTuple_GET_SIZE(packets);
            for (Py_ssize_t i = 0; i < np; i++) {
                PyObject *chunks = PyObject_GetAttr(
                    PyTuple_GET_ITEM(packets, i), s_chunks);
                int r = chunks ? count_completed(chunks, &completed) : -1;
                Py_XDECREF(chunks);
                if (r < 0) {
                    Py_DECREF(packets);
                    goto fail;
                }
            }
            Py_DECREF(packets);
        }
        double per_recv, per_byte, per_msg;
        if (attr_as_double(lan, s_cpu_recv, &per_recv) < 0
                || attr_as_double(lan, s_cpu_byte_recv, &per_byte) < 0
                || attr_as_double(lan, s_cpu_msg, &per_msg) < 0)
            goto fail;
        double t = per_byte * (double)size;
        cost = per_recv + t;
        t = per_msg * (double)completed;
        cost = cost + t;
    }
    Py_DECREF(lan);
    return PyFloat_FromDouble(cost);

fail:
    Py_DECREF(lan);
    return NULL;
}

/* ---------------------------------------------------------------------
 * SimLan.transmit fast path (see net/simlan.py)
 *
 * The fault-free, loss-free, unobserved frame path — the entirety of
 * benchmark traffic — runs in C: serial/generation bookkeeping, medium
 * occupancy, stats, and the single fanout event.  The *presence* of any
 * fault feature (loss rate, scripted drops, burst model, blocked nodes,
 * partition) or an attached observer bails to the pure method before any
 * state is touched, so loss draws keep consuming the RNG stream from
 * exactly the same code as always.
 * ------------------------------------------------------------------- */

/* Attribute is an empty container / falsy flag.  1 yes, 0 no, -1 error. */
static int
attr_is_falsy(PyObject *obj, PyObject *name)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    int t = PyObject_IsTrue(v);
    Py_DECREF(v);
    return t < 0 ? -1 : !t;
}

/* Attribute is None.  1 yes, 0 no, -1 error. */
static int
attr_is_none(PyObject *obj, PyObject *name)
{
    PyObject *v = PyObject_GetAttr(obj, name);
    if (v == NULL)
        return -1;
    int r = (v == Py_None);
    Py_DECREF(v);
    return r;
}

/* packet.wire_size() for any packet type.  -1 on error. */
static long long
any_wire_size(PyObject *packet)
{
    if (Py_TYPE(packet) == (PyTypeObject *)g_data_cls)
        return data_wire_size(packet);
    if (Py_TYPE(packet) == (PyTypeObject *)g_batch_cls)
        return batch_wire_size(packet);
    PyObject *szo = PyObject_CallMethodNoArgs(packet, s_wire_size_meth);
    if (szo == NULL)
        return -1;
    long long v = PyLong_AsLongLong(szo);
    Py_DECREF(szo);
    if (v == -1 && PyErr_Occurred())
        return -1;
    return v;
}

/* Mirror EventScheduler.schedule(when, cb, *args): past check, counter
 * draw, heap push.  Steals nothing; 0 / -1. */
static int
schedule_event(PyObject *sched, double when, PyObject *cb, PyObject *cargs)
{
    PyObject *clock = PyObject_GetAttr(sched, s_clock);
    if (clock == NULL)
        return -1;
    double now;
    if (attr_as_double(clock, s_now_attr, &now) < 0) {
        Py_DECREF(clock);
        return -1;
    }
    Py_DECREF(clock);
    PyObject *when_obj = PyFloat_FromDouble(when);
    if (when_obj == NULL)
        return -1;
    if (when < now) {
        PyObject *now_obj = PyFloat_FromDouble(now);
        if (now_obj != NULL)
            PyErr_Format(g_sim_error,
                         "cannot schedule event in the past: %S < %S",
                         when_obj, now_obj);
        Py_XDECREF(now_obj);
        Py_DECREF(when_obj);
        return -1;
    }
    PyObject *counter = PyObject_GetAttr(sched, s_counter);
    PyObject *cnt = counter ? PyIter_Next(counter) : NULL;
    Py_XDECREF(counter);
    if (cnt == NULL) {
        Py_DECREF(when_obj);
        return -1;
    }
    PyObject *entry = PyList_New(4);
    if (entry == NULL) {
        Py_DECREF(cnt);
        Py_DECREF(when_obj);
        return -1;
    }
    PyList_SET_ITEM(entry, 0, when_obj);    /* steals */
    PyList_SET_ITEM(entry, 1, cnt);
    PyList_SET_ITEM(entry, 2, Py_NewRef(cb));
    PyList_SET_ITEM(entry, 3, Py_NewRef(cargs));
    PyObject *heap = PyObject_GetAttr(sched, s_heap);
    if (heap == NULL || !PyList_Check(heap)) {
        if (heap != NULL && !PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "scheduler._heap must be a list");
        Py_XDECREF(heap);
        Py_DECREF(entry);
        return -1;
    }
    int r = heap_push(heap, entry);
    Py_DECREF(heap);
    Py_DECREF(entry);
    return r;
}

/* SimLan.transmit body for the plain case.  `dest` NULL = broadcast;
 * `generation` is the port's generation (never NULL from the LanPort
 * shortcut).  1 = handled, 0 = bail to the pure method (no state was
 * touched), -1 = error. */
static int
lan_transmit_impl(PyObject *lan, PyObject *src, PyObject *packet,
                  PyObject *dest, PyObject *generation)
{
    /* ---- bail probes: nothing below mutates ---- */
    int r = attr_is_none(lan, s_observer);
    if (r <= 0)
        return r;
    PyObject *faults = PyObject_GetAttr(lan, s_faults);
    if (faults == NULL)
        return -1;
    int plain =
        (r = attr_is_falsy(faults, s_down)) > 0
        && (r = attr_is_falsy(faults, s_send_blocked)) > 0
        && (r = attr_is_falsy(faults, s_recv_blocked)) > 0
        && (r = attr_is_falsy(faults, s_blocked_pairs)) > 0
        && (r = attr_is_falsy(faults, s_drop_serials)) > 0
        && (r = attr_is_none(faults, s_partition)) > 0
        && (r = attr_is_none(faults, s_burst_loss)) > 0;
    if (r < 0 || !plain) {
        Py_DECREF(faults);
        return r < 0 ? -1 : 0;
    }
    PyObject *config = PyObject_GetAttr(lan, s_config);
    if (config == NULL) {
        Py_DECREF(faults);
        return -1;
    }
    double loss_rate, extra_loss;
    if (attr_as_double(config, s_loss_rate, &loss_rate) < 0
            || attr_as_double(faults, s_extra_loss, &extra_loss) < 0) {
        Py_DECREF(config);
        Py_DECREF(faults);
        return -1;
    }
    Py_DECREF(faults);
    if (loss_rate + extra_loss > 0.0) {
        Py_DECREF(config);
        return 0;                       /* loss draws stay in Python */
    }
    /* Structural probes: the bookkeeping dicts must be plain dicts. */
    PyObject *txs = NULL, *gens = NULL, *chans = NULL, *chrecv = NULL,
        *stats = NULL, *sched = NULL, *fanout = NULL;
    int handled = -1;
    if ((txs = PyObject_GetAttr(lan, s_tx_serial)) == NULL
            || (gens = PyObject_GetAttr(lan, s_generations)) == NULL
            || (chans = PyObject_GetAttr(lan, s_channels)) == NULL
            || (chrecv = PyObject_GetAttr(lan, s_channel_receivers)) == NULL
            || (stats = PyObject_GetAttr(lan, s_stats)) == NULL
            || (sched = PyObject_GetAttr(lan, s_scheduler)) == NULL)
        goto done;
    if (!PyDict_CheckExact(txs) || !PyDict_CheckExact(gens)
            || !PyDict_CheckExact(chans) || !PyDict_CheckExact(chrecv)) {
        handled = 0;
        goto done;
    }
    PyObject *channel = PyDict_GetItemWithError(chans, src);  /* borrowed */
    if (channel == NULL) {
        if (PyErr_Occurred())
            goto done;
        channel = g_zero;
    }
    PyObject *receivers = PyDict_GetItemWithError(chrecv, channel);
    if (receivers == NULL && PyErr_Occurred())
        goto done;
    if (receivers != NULL && !PyDict_CheckExact(receivers)) {
        handled = 0;
        goto done;
    }

    /* ---- committed: mirror the pure mutation order exactly ---- */
    {
        if (attr_add_ll(stats, s_frames_offered, 1) < 0)
            goto done;
        PyObject *cur = PyDict_GetItemWithError(txs, src);  /* borrowed */
        if (cur == NULL && PyErr_Occurred())
            goto done;
        long long serial = 0;
        if (cur != NULL) {
            serial = PyLong_AsLongLong(cur);
            if (serial == -1 && PyErr_Occurred())
                goto done;
        }
        serial += 1;
        PyObject *serial_obj = PyLong_FromLongLong(serial);
        if (serial_obj == NULL)
            goto done;
        if (PyDict_SetItem(txs, src, serial_obj) < 0) {
            Py_DECREF(serial_obj);
            goto done;
        }
        if (generation != NULL && generation != Py_None) {
            PyObject *curgen = PyDict_GetItemWithError(gens, src);
            if (curgen == NULL && PyErr_Occurred()) {
                Py_DECREF(serial_obj);
                goto done;
            }
            int neq = curgen == NULL ? 1
                : PyObject_RichCompareBool(curgen, generation, Py_NE);
            if (neq != 0) {
                Py_DECREF(serial_obj);
                if (neq < 0)
                    goto done;
                handled = attr_add_ll(stats, s_frames_blocked, 1) < 0
                    ? -1 : 1;           /* dead incarnation's port */
                goto done;
            }
        }
        /* faults.can_send is True: down and send_blocked probed falsy. */
        long long payload = any_wire_size(packet);
        if (payload < 0) {
            Py_DECREF(serial_obj);
            goto done;
        }
        long long frame_overhead, min_frame;
        double bw, latency;
        if (attr_as_ll(config, s_frame_overhead, &frame_overhead) < 0
                || attr_as_ll(config, s_min_frame, &min_frame) < 0
                || attr_as_double(config, s_bandwidth, &bw) < 0
                || attr_as_double(config, s_latency, &latency) < 0) {
            Py_DECREF(serial_obj);
            goto done;
        }
        long long frame = payload + frame_overhead;
        if (frame < min_frame)
            frame = min_frame;
        double wire_time = (double)frame * 8.0 / bw;
        PyObject *clock = PyObject_GetAttr(sched, s_clock);
        double now;
        if (clock == NULL || attr_as_double(clock, s_now_attr, &now) < 0) {
            Py_XDECREF(clock);
            Py_DECREF(serial_obj);
            goto done;
        }
        Py_DECREF(clock);
        double start;
        if (attr_as_double(lan, s_medium_free, &start) < 0) {
            Py_DECREF(serial_obj);
            goto done;
        }
        if (now > start)
            start = now;
        double done_t = start + wire_time;
        PyObject *done_obj = PyFloat_FromDouble(done_t);
        if (done_obj == NULL
                || PyObject_SetAttr(lan, s_medium_free, done_obj) < 0) {
            Py_XDECREF(done_obj);
            Py_DECREF(serial_obj);
            goto done;
        }
        Py_DECREF(done_obj);
        long long wire = payload + frame_overhead;
        if (attr_add_ll(stats, s_frames_sent, 1) < 0
                || attr_add_ll(stats, s_payload_bytes, payload) < 0
                || attr_add_ll(stats, s_wire_bytes,
                               wire > min_frame ? wire : min_frame) < 0
                || attr_add_double(stats, s_busy_time, wire_time) < 0) {
            Py_DECREF(serial_obj);
            goto done;
        }
        double arrival;
        if (Py_TYPE(packet) == (PyTypeObject *)g_batch_cls) {
            /* head-frame arrival: start + wire_time(first) + latency */
            PyObject *subs = PyObject_GetAttr(packet, s_packets);
            if (subs == NULL || !PyTuple_Check(subs)
                    || PyTuple_GET_SIZE(subs) == 0) {
                Py_XDECREF(subs);
                if (!PyErr_Occurred())
                    PyErr_SetString(PyExc_TypeError,
                                    "batch.packets must be a non-empty tuple");
                Py_DECREF(serial_obj);
                goto done;
            }
            long long w0 = data_wire_size(PyTuple_GET_ITEM(subs, 0));
            Py_DECREF(subs);
            if (w0 < 0) {
                Py_DECREF(serial_obj);
                goto done;
            }
            long long f0 = w0 + frame_overhead;
            if (f0 < min_frame)
                f0 = min_frame;
            double wt0 = (double)f0 * 8.0 / bw;
            arrival = start + wt0;
            arrival = arrival + latency;
        }
        else {
            arrival = done_t + latency;
        }
        /* fanout list, in attachment (dict insertion) order */
        fanout = PyList_New(0);
        if (fanout == NULL) {
            Py_DECREF(serial_obj);
            goto done;
        }
        long long delivered = 0;
        if (receivers != NULL && dest != NULL) {
            int present = PyDict_Contains(receivers, dest);
            if (present < 0) {
                Py_DECREF(serial_obj);
                goto done;
            }
            if (present) {
                PyObject *deliver = PyDict_GetItemWithError(receivers, dest);
                PyObject *pair =
                    deliver ? PyTuple_Pack(2, deliver, dest) : NULL;
                int ar = pair ? PyList_Append(fanout, pair) : -1;
                Py_XDECREF(pair);
                if (ar < 0) {
                    Py_DECREF(serial_obj);
                    goto done;
                }
                delivered++;
            }
        }
        else if (receivers != NULL) {
            PyObject *node, *deliver;
            Py_ssize_t pos = 0;
            while (PyDict_Next(receivers, &pos, &node, &deliver)) {
                int self_send = PyObject_RichCompareBool(node, src, Py_EQ);
                if (self_send < 0) {
                    Py_DECREF(serial_obj);
                    goto done;
                }
                if (self_send)
                    continue;
                PyObject *pair = PyTuple_Pack(2, deliver, node);
                int ar = pair ? PyList_Append(fanout, pair) : -1;
                Py_XDECREF(pair);
                if (ar < 0) {
                    Py_DECREF(serial_obj);
                    goto done;
                }
                delivered++;
            }
        }
        if (delivered > 0
                && attr_add_ll(stats, s_deliveries, delivered) < 0) {
            Py_DECREF(serial_obj);
            goto done;
        }
        if (PyList_GET_SIZE(fanout) > 0) {
            PyObject *cb = PyObject_GetAttr(lan, s_fanout_attr);
            PyObject *cargs =
                cb ? PyTuple_Pack(4, src, packet, fanout, serial_obj) : NULL;
            int sr = cargs ? schedule_event(sched, arrival, cb, cargs) : -1;
            Py_XDECREF(cargs);
            Py_XDECREF(cb);
            if (sr < 0) {
                Py_DECREF(serial_obj);
                goto done;
            }
        }
        Py_DECREF(serial_obj);
        handled = 1;
    }

done:
    Py_DECREF(config);
    Py_XDECREF(txs);
    Py_XDECREF(gens);
    Py_XDECREF(chans);
    Py_XDECREF(chrecv);
    Py_XDECREF(stats);
    Py_XDECREF(sched);
    Py_XDECREF(fanout);
    return handled;
}

/* ---------------------------------------------------------------------
 * NodeCpu pipeline: submit / finish (see net/stack.py)
 *
 * The single-server FIFO CPU is the per-frame glue between the LAN and
 * the protocol engines: every send and receive passes through
 * ``submit -> _begin -> (scheduled) _finish -> _start_next``.  These C
 * twins collapse that chain while keeping the *scheduled entry*
 * byte-identical to the pure path: ``[when, counter, cpu._finish,
 * (fn, args)]`` with a fresh bound method, so the explorer's entry
 * classification (NodeCpu ownership, LanPort transmit detection) and
 * deepcopy world-forking see exactly the pure scheduler state.
 * ------------------------------------------------------------------- */

/* _begin: evaluate the (possibly deferred) cost, charge stats, schedule
 * cpu._finish.  0 / -1. */
static int
cpu_begin(PyObject *cpu, PyObject *cost, PyObject *fn, PyObject *fnargs)
{
    PyObject *costv;
    if (g_recvjob_cls != NULL
            && Py_TYPE(cost) == (PyTypeObject *)g_recvjob_cls) {
        /* _RecvJobCost.__call__ inlined: stack._recv_cost_fn(packet) */
        PyObject *stack = PyObject_GetAttr(cost, s_stack_attr);
        if (stack == NULL)
            return -1;
        PyObject *packet = PyObject_GetAttr(cost, s_packet_attr);
        PyObject *rcfn = packet ? PyObject_GetAttr(stack, s_recv_cost_fn)
                                : NULL;
        Py_DECREF(stack);
        if (rcfn == NULL) {
            Py_XDECREF(packet);
            return -1;
        }
        if (PyMethod_Check(rcfn)
                && PyMethod_GET_FUNCTION(rcfn) == g_recv_cost_fn) {
            /* ReplicationEngine._recv_cost in C; NotImplemented bails
             * to the pure classifier (old-ring / foreign traffic). */
            costv = recv_cost_impl(PyMethod_GET_SELF(rcfn), packet);
            if (costv == Py_NotImplemented) {
                Py_DECREF(costv);
                costv = PyObject_CallOneArg(rcfn, packet);
            }
        }
        else {
            costv = PyObject_CallOneArg(rcfn, packet);
        }
        Py_DECREF(packet);
        Py_DECREF(rcfn);
    }
    else if (PyCallable_Check(cost)) {
        costv = PyObject_CallNoArgs(cost);
    }
    else {
        costv = Py_NewRef(cost);
    }
    if (costv == NULL)
        return -1;
    int neg = PyObject_RichCompareBool(costv, g_zero, Py_LT);
    if (neg != 0) {
        if (neg > 0)
            PyErr_Format(g_transport_error, "negative CPU cost %S", costv);
        Py_DECREF(costv);
        return -1;
    }
    PyObject *stats = PyObject_GetAttr(cpu, s_stats);
    if (stats == NULL)
        goto fail_cost;
    PyObject *busy = PyObject_GetAttr(stats, s_busy_time);
    PyObject *newbusy = busy ? PyNumber_Add(busy, costv) : NULL;
    Py_XDECREF(busy);
    if (newbusy == NULL) {
        Py_DECREF(stats);
        goto fail_cost;
    }
    int sr = PyObject_SetAttr(stats, s_busy_time, newbusy);
    Py_DECREF(newbusy);
    if (sr < 0 || attr_add_ll(stats, s_operations, 1) < 0) {
        Py_DECREF(stats);
        goto fail_cost;
    }
    Py_DECREF(stats);

    PyObject *sched = PyObject_GetAttr(cpu, s_scheduler);
    if (sched == NULL)
        goto fail_cost;
    PyObject *clock = PyObject_GetAttr(sched, s_clock);
    PyObject *now_obj = clock ? PyObject_GetAttr(clock, s_now_attr) : NULL;
    Py_XDECREF(clock);
    if (now_obj == NULL)
        goto fail_sched;
    PyObject *when = PyNumber_Add(now_obj, costv);
    if (when == NULL) {
        Py_DECREF(now_obj);
        goto fail_sched;
    }
    int past = PyObject_RichCompareBool(when, now_obj, Py_LT);
    if (past != 0) {
        if (past > 0)
            PyErr_Format(g_sim_error,
                         "cannot schedule event in the past: %S < %S",
                         when, now_obj);
        Py_DECREF(when);
        Py_DECREF(now_obj);
        goto fail_sched;
    }
    Py_DECREF(now_obj);
    PyObject *counter = PyObject_GetAttr(sched, s_counter);
    PyObject *cnt = counter ? PyIter_Next(counter) : NULL;
    Py_XDECREF(counter);
    if (cnt == NULL) {
        Py_DECREF(when);
        goto fail_sched;
    }
    PyObject *finish = PyObject_GetAttr(cpu, s_finish);
    PyObject *args2 = finish ? PyTuple_Pack(2, fn, fnargs) : NULL;
    if (args2 == NULL) {
        Py_XDECREF(finish);
        Py_DECREF(cnt);
        Py_DECREF(when);
        goto fail_sched;
    }
    PyObject *entry = PyList_New(4);
    if (entry == NULL) {
        Py_DECREF(args2);
        Py_DECREF(finish);
        Py_DECREF(cnt);
        Py_DECREF(when);
        goto fail_sched;
    }
    PyList_SET_ITEM(entry, 0, when);        /* steals */
    PyList_SET_ITEM(entry, 1, cnt);
    PyList_SET_ITEM(entry, 2, finish);
    PyList_SET_ITEM(entry, 3, args2);
    PyObject *heap = PyObject_GetAttr(sched, s_heap);
    if (heap == NULL || !PyList_Check(heap)) {
        if (heap != NULL && !PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "scheduler._heap must be a list");
        Py_XDECREF(heap);
        Py_DECREF(entry);
        goto fail_sched;
    }
    int pr = heap_push(heap, entry);
    Py_DECREF(heap);
    Py_DECREF(entry);
    Py_DECREF(sched);
    Py_DECREF(costv);
    return pr;

fail_sched:
    Py_DECREF(sched);
fail_cost:
    Py_DECREF(costv);
    return -1;
}

/* _start_next: pop the next queued job or go idle.  0 / -1. */
static int
cpu_start_next(PyObject *cpu)
{
    PyObject *queue = PyObject_GetAttr(cpu, s_queue);
    if (queue == NULL)
        return -1;
    Py_ssize_t n = PySequence_Size(queue);
    if (n < 0) {
        Py_DECREF(queue);
        return -1;
    }
    if (n == 0) {
        Py_DECREF(queue);
        return PyObject_SetAttr(cpu, s_running, Py_False);
    }
    PyObject *trip = PyObject_CallMethodObjArgs(queue, s_popleft, NULL);
    Py_DECREF(queue);
    if (trip == NULL)
        return -1;
    if (!PyTuple_CheckExact(trip) || PyTuple_GET_SIZE(trip) != 3) {
        Py_DECREF(trip);
        PyErr_SetString(PyExc_TypeError,
                        "CPU queue entries must be (cost, fn, args) tuples");
        return -1;
    }
    int r = cpu_begin(cpu, PyTuple_GET_ITEM(trip, 0),
                      PyTuple_GET_ITEM(trip, 1), PyTuple_GET_ITEM(trip, 2));
    Py_DECREF(trip);
    return r;
}

/* NodeCpu.submit body.  0 / -1. */
static int
cpu_submit_impl(PyObject *cpu, PyObject *cost, PyObject *fn,
                PyObject *fnargs)
{
    PyObject *running = PyObject_GetAttr(cpu, s_running);
    if (running == NULL)
        return -1;
    int busy = PyObject_IsTrue(running);
    Py_DECREF(running);
    if (busy < 0)
        return -1;
    if (busy) {
        PyObject *queue = PyObject_GetAttr(cpu, s_queue);
        if (queue == NULL)
            return -1;
        PyObject *trip = PyTuple_Pack(3, cost, fn, fnargs);
        if (trip == NULL) {
            Py_DECREF(queue);
            return -1;
        }
        PyObject *res = PyObject_CallMethodObjArgs(queue, s_append, trip,
                                                   NULL);
        Py_DECREF(trip);
        Py_DECREF(queue);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    if (PyObject_SetAttr(cpu, s_running, Py_True) < 0)
        return -1;
    return cpu_begin(cpu, cost, fn, fnargs);
}

/* cpu_submit(cpu, cost, fn, args): compiled NodeCpu.submit. */
static PyObject *
corec_cpu_submit(PyObject *self, PyObject *args)
{
    PyObject *cpu, *cost, *fn, *fnargs;
    if (!PyArg_ParseTuple(args, "OOOO!", &cpu, &cost, &fn,
                          &PyTuple_Type, &fnargs))
        return NULL;
    if (check_bound() < 0)
        return NULL;
    if (cpu_submit_impl(cpu, cost, fn, fnargs) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* NodeCpu._finish body — run the job, then start the next one (even when
 * the job raised, like the pure try/finally).  0 / -1. */
static PyObject *
call_recv_handler(PyObject *handler, PyObject *fnargs)
{
    /* handler(packet, network) with the engine's batch receive chain
     * inlined: on_packet -> recv_batch -> TotemSrp.on_batch are all thin
     * known bodies ending in the compiled on_batch, and batch frames are
     * the bulk of upward traffic.  Any patched link in the chain
     * (instance attribute or subclass override) fails the bound-function
     * identity checks and takes the generic call below. */
    if (g_on_packet_fn != NULL && PyMethod_Check(handler)
            && PyMethod_GET_FUNCTION(handler) == g_on_packet_fn
            && PyTuple_GET_SIZE(fnargs) == 2
            && Py_TYPE(PyTuple_GET_ITEM(fnargs, 0))
               == (PyTypeObject *)g_batch_cls) {
        PyObject *owner = PyMethod_GET_SELF(handler);
        PyObject *stopped = PyObject_GetAttr(owner, s_stopped);
        if (stopped == NULL)
            return NULL;
        int is_stopped = PyObject_IsTrue(stopped);
        Py_DECREF(stopped);
        if (is_stopped < 0)
            return NULL;
        if (is_stopped)
            Py_RETURN_NONE;     /* dead incarnation: drop the frame */
        PyObject *recvb = PyObject_GetAttr(owner, s_recv_batch);
        if (recvb == NULL)
            return NULL;
        int plain = PyMethod_Check(recvb)
            && PyMethod_GET_FUNCTION(recvb) == g_recv_batch_fn;
        Py_DECREF(recvb);
        if (plain) {
            PyObject *srp = PyObject_GetAttr(owner, s_srp_pub);
            if (srp == NULL)
                return NULL;
            PyObject *onb = PyObject_GetAttr(srp, s_on_batch_meth);
            if (onb == NULL) {
                Py_DECREF(srp);
                return NULL;
            }
            plain = PyMethod_Check(onb)
                && PyMethod_GET_FUNCTION(onb) == g_srp_on_batch_fn;
            Py_DECREF(onb);
            if (plain) {
                PyObject *t = PyTuple_Pack(3, srp,
                                           PyTuple_GET_ITEM(fnargs, 0),
                                           PyTuple_GET_ITEM(fnargs, 1));
                Py_DECREF(srp);
                if (t == NULL)
                    return NULL;
                PyObject *r = corec_on_batch(NULL, t);
                Py_DECREF(t);
                return r;
            }
            Py_DECREF(srp);
        }
    }
    return PyObject_Call(handler, fnargs, NULL);
}

static int
cpu_finish_impl(PyObject *cpu, PyObject *fn, PyObject *fnargs)
{
    PyObject *res;
    if (g_stack_dispatch != NULL && PyMethod_Check(fn)
            && PyMethod_GET_FUNCTION(fn) == g_stack_dispatch) {
        /* NetworkStack._dispatch inlined: hand the frame to the installed
         * receive handler (or count it undelivered). */
        PyObject *stack = PyMethod_GET_SELF(fn);
        PyObject *handler = PyObject_GetAttr(stack, s_handler);
        if (handler == NULL) {
            res = NULL;
        }
        else if (handler == Py_None) {
            Py_DECREF(handler);
            res = attr_add_ll(stack, s_undelivered, 1) < 0
                ? NULL : Py_NewRef(Py_None);
        }
        else {
            res = call_recv_handler(handler, fnargs);
            Py_DECREF(handler);
        }
    }
    else if (g_port_broadcast_fn != NULL && PyMethod_Check(fn)
             && (PyMethod_GET_FUNCTION(fn) == g_port_broadcast_fn
                 || PyMethod_GET_FUNCTION(fn) == g_port_unicast_fn)
             && PyTuple_GET_SIZE(fnargs)
                == (PyMethod_GET_FUNCTION(fn) == g_port_broadcast_fn ? 1 : 2)) {
        /* LanPort.broadcast / .unicast inlined -> lan_transmit_impl,
         * which bails back to the pure transmit (generic call below)
         * whenever the LAN has an observer, faults, or a loss rate. */
        int uni = PyMethod_GET_FUNCTION(fn) == g_port_unicast_fn;
        PyObject *port = PyMethod_GET_SELF(fn);
        PyObject *lan = PyObject_GetAttr(port, s_lan_attr);
        PyObject *node = lan ? PyObject_GetAttr(port, s_node_attr) : NULL;
        PyObject *gen = node ? PyObject_GetAttr(port, s_generation_attr) : NULL;
        if (gen == NULL) {
            Py_XDECREF(node);
            Py_XDECREF(lan);
            res = NULL;
        }
        else {
            PyObject *dest = uni ? PyTuple_GET_ITEM(fnargs, 0) : NULL;
            PyObject *packet = PyTuple_GET_ITEM(fnargs, uni ? 1 : 0);
            int tr = lan_transmit_impl(lan, node, packet, dest, gen);
            Py_DECREF(gen);
            Py_DECREF(node);
            Py_DECREF(lan);
            if (tr < 0)
                res = NULL;
            else if (tr > 0)
                res = Py_NewRef(Py_None);
            else
                res = PyObject_Call(fn, fnargs, NULL);
        }
    }
    else {
        res = PyObject_Call(fn, fnargs, NULL);
    }
    if (res == NULL) {
        PyObject *etype, *evalue, *etb;
        PyErr_Fetch(&etype, &evalue, &etb);
        if (cpu_start_next(cpu) < 0) {
            /* both raised: the finally's exception wins, chained */
            _PyErr_ChainExceptions(etype, evalue, etb);
            return -1;
        }
        PyErr_Restore(etype, evalue, etb);
        return -1;
    }
    Py_DECREF(res);
    return cpu_start_next(cpu);
}

/* cpu_finish(cpu, fn, args): module-level wrapper for NodeCpu._finish. */
static PyObject *
corec_cpu_finish(PyObject *self, PyObject *args)
{
    PyObject *cpu, *fn, *fnargs;
    if (!PyArg_ParseTuple(args, "OOO!", &cpu, &fn, &PyTuple_Type, &fnargs))
        return NULL;
    if (check_bound() < 0)
        return NULL;
    if (cpu_finish_impl(cpu, fn, fnargs) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ---------------------------------------------------------------------
 * scheduler dispatch shortcuts
 *
 * The compiled run_until pops ordinary bound methods off the heap (the
 * scheduled state must stay pure-identical for the explorer and for
 * deepcopy world-forking), but most of them — CPU finish, batched
 * applies, post-train delivery passes, LAN fanout — have C twins.
 * dispatch_event() recognises them by function identity and runs the
 * twin directly, skipping the Python wrapper frame.  A callback whose
 * method was patched (instrumentation, mocks) has a different __func__
 * and takes the generic call path.
 * ------------------------------------------------------------------- */

/* SimLan._fanout body: cargs = (src, packet, targets, serial).  0 / -1. */
static int
fanout_impl(PyObject *lan, PyObject *cargs)
{
    PyObject *src = PyTuple_GET_ITEM(cargs, 0);
    PyObject *packet = PyTuple_GET_ITEM(cargs, 1);
    PyObject *targets = PyTuple_GET_ITEM(cargs, 2);
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(targets); i++) {
        PyObject *pair = PyList_GET_ITEM(targets, i);
        Py_INCREF(pair);
        if (!PyTuple_Check(pair) || PyTuple_GET_SIZE(pair) != 2) {
            Py_DECREF(pair);
            PyErr_SetString(PyExc_TypeError,
                            "fanout targets must be (deliver, node) tuples");
            return -1;
        }
        PyObject *deliver = PyTuple_GET_ITEM(pair, 0);
        int inlined = 0;
        if (g_portdeliver_cls != NULL
                && Py_TYPE(deliver) == (PyTypeObject *)g_portdeliver_cls) {
            /* _PortDeliver.__call__ inlined:
             *   stack._cpu.submit(_RecvJobCost(stack, packet),
             *                     stack._dispatch, packet, self._network)
             * — but only when stack._cpu.submit is the real NodeCpu
             * method (a mocked or patched CPU takes the generic call). */
            PyObject *stack = PyObject_GetAttr(deliver, s_stack_attr);
            PyObject *network =
                stack ? PyObject_GetAttr(deliver, s_network_attr) : NULL;
            PyObject *cpu =
                network ? PyObject_GetAttr(stack, s_cpu_attr) : NULL;
            PyObject *submeth =
                cpu ? PyObject_GetAttr(cpu, s_submit) : NULL;
            if (submeth == NULL) {
                Py_XDECREF(cpu);
                Py_XDECREF(network);
                Py_XDECREF(stack);
                Py_DECREF(pair);
                return -1;
            }
            if (PyMethod_Check(submeth)
                    && PyMethod_GET_FUNCTION(submeth) == g_cpu_submit_fn) {
                PyObject *dispatch = PyObject_GetAttr(stack,
                                                      s_dispatch_meth);
                PyObject *cost = dispatch ? plain_new(g_recvjob_cls) : NULL;
                if (cost != NULL
                        && (PyObject_GenericSetAttr(cost, s_stack_attr,
                                                    stack) < 0
                            || PyObject_GenericSetAttr(cost, s_packet_attr,
                                                       packet) < 0))
                    Py_CLEAR(cost);
                PyObject *fnargs =
                    cost ? PyTuple_Pack(2, packet, network) : NULL;
                int r = fnargs == NULL ? -1
                    : cpu_submit_impl(cpu, cost, dispatch, fnargs);
                Py_XDECREF(fnargs);
                Py_XDECREF(cost);
                Py_XDECREF(dispatch);
                if (r < 0) {
                    Py_DECREF(submeth);
                    Py_DECREF(cpu);
                    Py_DECREF(network);
                    Py_DECREF(stack);
                    Py_DECREF(pair);
                    return -1;
                }
                inlined = 1;
            }
            Py_DECREF(submeth);
            Py_DECREF(cpu);
            Py_DECREF(network);
            Py_DECREF(stack);
        }
        if (!inlined) {
            PyObject *r = PyObject_CallFunctionObjArgs(deliver, src,
                                                       packet, NULL);
            if (r == NULL) {
                Py_DECREF(pair);
                return -1;
            }
            Py_DECREF(r);
        }
        Py_DECREF(pair);
    }
    return 0;
}

/* Run one scheduler event.  0 / -1 with the callback's exception set. */
static int
dispatch_event(PyObject *cb, PyObject *cargs)
{
    if (PyMethod_Check(cb) && PyTuple_CheckExact(cargs)) {
        PyObject *fn = PyMethod_GET_FUNCTION(cb);
        PyObject *owner = PyMethod_GET_SELF(cb);
        Py_ssize_t n = PyTuple_GET_SIZE(cargs);
        if (fn == g_cpu_finish_fn && n == 2
                && PyTuple_CheckExact(PyTuple_GET_ITEM(cargs, 1)))
            return cpu_finish_impl(owner, PyTuple_GET_ITEM(cargs, 0),
                                   PyTuple_GET_ITEM(cargs, 1));
        if (fn == g_apply_fn && n == 2) {
            PyObject *t = PyTuple_Pack(3, owner, PyTuple_GET_ITEM(cargs, 0),
                                       PyTuple_GET_ITEM(cargs, 1));
            if (t == NULL)
                return -1;
            PyObject *r = corec_apply_batched(NULL, t);
            Py_DECREF(t);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
            return 0;
        }
        if (fn == g_deliver_after_fn && n == 0) {
            /* TotemSrp._deliver_after_batch inlined. */
            PyObject *stopped = PyObject_GetAttr(owner, s_stopped);
            if (stopped == NULL)
                return -1;
            int st = PyObject_IsTrue(stopped);
            Py_DECREF(stopped);
            if (st != 0)
                return st < 0 ? -1 : 0;
            PyObject *state = PyObject_GetAttr(owner, s_state);
            if (state == NULL)
                return -1;
            int rec = (state == g_state_recovery);
            Py_DECREF(state);
            if (rec)
                return 0;
            /* The explorer patches instances' _try_deliver; honour it. */
            PyObject *td = PyObject_GetAttr(owner, s_try_deliver);
            if (td == NULL)
                return -1;
            PyObject *r;
            if (PyMethod_Check(td)
                    && PyMethod_GET_FUNCTION(td) == g_try_deliver_fn)
                r = corec_try_deliver(NULL, owner);
            else
                r = PyObject_CallNoArgs(td);
            Py_DECREF(td);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
            return 0;
        }
        if (fn == g_fanout_fn && n == 4
                && PyList_Check(PyTuple_GET_ITEM(cargs, 2)))
            return fanout_impl(owner, cargs);
    }
    PyObject *res = PyObject_Call(cb, cargs, NULL);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* ---------------------------------------------------------------------
 * module definition
 * ------------------------------------------------------------------- */

static PyMethodDef corec_methods[] = {
    {"bind", corec_bind, METH_VARARGS,
     "bind(SimulationError, DeliveredMessage, ChunkKind.APP, "
     "SrpState.RECOVERY): cache the Python objects the fast paths need."},
    {"run_until", corec_run_until, METH_VARARGS,
     "run_until(scheduler, t): compiled event-dispatch inner loop."},
    {"try_deliver", corec_try_deliver, METH_O,
     "try_deliver(engine): compiled contiguous delivery sweep."},
    {"apply_batched", corec_apply_batched, METH_VARARGS,
     "apply_batched(engine, packet, network): batch-apply fast path."},
    {"next_batch", corec_packer_next_batch, METH_VARARGS,
     "next_batch(packer, max_packets): compiled Packer.next_batch."},
    {"broadcast_batched", corec_broadcast_batched, METH_VARARGS,
     "broadcast_batched(engine, token, allowance): token-visit send path."},
    {"on_batch", corec_on_batch, METH_VARARGS,
     "on_batch(engine, batch, network): post a frame train's applies."},
    {"is_duplicate_batch", corec_is_duplicate_batch, METH_VARARGS,
     "is_duplicate_batch(engine, batch) -> bool | NotImplemented."},
    {"encode_packet", corec_encode, METH_O,
     "encode_packet(packet) -> bytes | NotImplemented (control kinds)."},
    {"decode_packet", corec_decode, METH_O,
     "decode_packet(data) -> packet | NotImplemented (control kinds)."},
    {"cpu_submit", corec_cpu_submit, METH_VARARGS,
     "cpu_submit(cpu, cost, fn, args): compiled NodeCpu.submit."},
    {"cpu_finish", corec_cpu_finish, METH_VARARGS,
     "cpu_finish(cpu, fn, args): compiled NodeCpu._finish body."},
    {NULL}
};

static struct PyModuleDef corec_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._fast._corec",
    .m_doc = "Hand-written CPython acceleration of the simulator hot paths.",
    .m_size = -1,
    .m_methods = corec_methods,
};

PyMODINIT_FUNC
PyInit__corec(void)
{
    if (intern_all() < 0)
        return NULL;
    crc_table_init();
    PyObject *module = PyModule_Create(&corec_module);
    if (module == NULL)
        return NULL;
    if (PyType_Ready(&RBType) < 0
            || PyModule_AddObjectRef(module, "ReceiveBuffer",
                                     (PyObject *)&RBType) < 0)
        goto fail;
    if (PyType_Ready(&ReasmType) < 0
            || PyModule_AddObjectRef(module, "Reassembler",
                                     (PyObject *)&ReasmType) < 0)
        goto fail;
    return module;
fail:
    Py_DECREF(module);
    return NULL;
}
