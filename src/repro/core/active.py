"""Active replication (paper §5, Figure 2).

Every message and token is sent over all N (non-faulty) networks, in the
same network order, so per-network FIFO gives the timing inequalities (1)-(7)
of §5.  On the receive side:

* data packets pass straight up — the SRP's sequence-number filter destroys
  the duplicate copies (requirement A1);
* a token is passed up only once a copy has arrived on *every* non-faulty
  network (requirements A2: no spurious retransmission requests, and A3: a
  slower network can never fall behind, because the ring does not advance
  until the token has cleared all networks);
* a token timer started at the first copy of each new token guarantees
  progress when copies are lost or a network dies (requirement A4) — on
  expiry the token is delivered anyway and the problem counter of every
  silent network is incremented (A5), with periodic decay so sporadic loss
  is forgiven (A6).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..types import NodeId, TIMEOUT_NETWORK
from ..wire.packets import BatchPacket, DataPacket, Token
from .base import ReplicationEngine
from .monitor import ProblemCounterMonitor


class ActiveReplication(ReplicationEngine):
    """The Figure-2 algorithm."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.monitor = ProblemCounterMonitor(
            self.faults, self.config.problem_counter_threshold)
        self._last_token: Optional[Token] = None
        self._recv_flags: List[bool] = [False] * self.config.num_networks
        self._delivered_current = False
        self._token_timer = None
        self._decay_timer = None

    def start(self) -> None:
        self._schedule_decay()

    def _cancel_timers(self) -> None:
        self._stop_token_timer()
        if self._decay_timer is not None:
            self._decay_timer.cancel()
            self._decay_timer = None

    def _schedule_decay(self) -> None:
        if self._stopped:
            return
        self._decay_timer = self.runtime.set_timer(
            self.config.problem_counter_decay_interval, self._on_decay)

    def _on_decay(self) -> None:
        self._note_timer_fired("decay")
        if self._stopped:
            return
        self.monitor.decay()
        self._schedule_decay()

    def _style_digest(self) -> Tuple:
        return (self._packet_digest(self._last_token),
                tuple(self._recv_flags), self._delivered_current,
                self._timer_digest(self._token_timer),
                self._timer_digest(self._decay_timer),
                tuple(self.monitor.counters))

    # ----- sends: every packet via every non-faulty network, same order -----

    def broadcast_data(self, packet: DataPacket) -> None:
        self.stats.data_sends += 1
        for i in self.faults.operational_networks:
            self.stack.broadcast(i, packet)

    def broadcast_batch(self, batch: BatchPacket) -> None:
        # The whole frame train is replicated like any data frame; the SRP's
        # per-packet sequence filter destroys the duplicate copies (A1).
        self.stats.data_sends += 1
        for i in self.faults.operational_networks:
            self.stack.broadcast(i, batch)

    def send_token(self, token: Token, dest: NodeId) -> None:
        self.stats.token_sends += 1
        for i in self.faults.operational_networks:
            self.stack.unicast(i, dest, token)

    # ----- receives -----

    def recv_data(self, packet: DataPacket, network: int) -> None:
        # Duplicate copies are destroyed by the SRP (requirement A1); packets
        # are accepted even from networks marked faulty (paper §3).
        self.srp.on_data(packet, network)

    def recv_token(self, token: Token, network: int) -> None:
        if token.ring_id != self.srp.ring_id:
            # A token for a ring we are not on — typically a delayed copy
            # from a *previous* ring incarnation.  It must not be mistaken
            # for a new token: resetting the merge state here would clobber
            # ``_last_token``/``_recv_flags`` and let the current ring's
            # token be passed up a second time when its copies re-arrive.
            # The SRP would discard it anyway (wrong ring), so drop it.
            self.stats.foreign_ring_tokens += 1
            return
        last = self._last_token
        is_new = (last is None
                  or token.ring_id != last.ring_id
                  or token.stamp > last.stamp)
        if is_new:
            self._last_token = token
            self._recv_flags = [False] * self.config.num_networks
            self._recv_flags[network] = True
            self._delivered_current = False
            self.stats.tokens_merged += 1
            # Once running, the timer is never restarted: a new token can
            # only arrive after the current one completed another rotation.
            self._start_token_timer()
        elif token.ring_id == last.ring_id and token.stamp == last.stamp:
            self._recv_flags[network] = True
            if self._delivered_current:
                self.stats.late_token_copies += 1
        else:
            self.stats.stale_tokens_dropped += 1
            return  # older than the current token: a stale retransmission

        if self._delivered_current:
            return
        for i in range(self.config.num_networks):
            if not self._recv_flags[i] and not self.faults.is_faulty(i):
                return  # keep waiting (or let the timer expire)
        self._stop_token_timer()
        self._deliver_current(network)

    def _deliver_current(self, network: int) -> None:
        assert self._last_token is not None
        self._delivered_current = True
        self.stats.tokens_delivered += 1
        if self.probe is not None:
            self.probe.engine_token_up(self._last_token, network)
        self.srp.on_token(self._last_token, network)

    # ----- token timer (requirements A4-A6) -----

    def _start_token_timer(self) -> None:
        self._stop_token_timer()
        self._token_timer = self.runtime.set_timer(
            self.config.active_token_timeout, self._on_token_timeout)

    def _stop_token_timer(self) -> None:
        if self._token_timer is not None:
            self._token_timer.cancel()
            self._token_timer = None

    def _on_token_timeout(self) -> None:
        self._note_timer_fired("token")
        self._token_timer = None
        if self._stopped:
            return
        if self._last_token is None or self._delivered_current:
            return
        self.stats.token_timer_expiries += 1
        self._note_token_timeout("active-merge")
        for i in range(self.config.num_networks):
            if not self._recv_flags[i]:
                self.monitor.token_copy_missing(i)
        self._deliver_current(network=TIMEOUT_NETWORK)
