"""Passive replication (paper §6, Figures 4 and 5).

Each message and each token is sent over exactly one network, assigned
round-robin (skipping networks marked faulty), so the fault-free bandwidth
is the *sum* of the networks' bandwidths at the cost of no loss masking.

Receive side (Figure 4):

* data packets pass straight up;
* a token is passed up only when no messages are missing relative to it
  (``anyMessagesMissing()``, i.e. the SRP's aru has reached the token's
  sequence number) — this is requirement P1: a message merely *delayed* on
  a slower network must never trigger a retransmission request;
* otherwise the token is buffered and a token timer started (10 ms in the
  paper); the timer is never restarted while active.  On expiry the buffered
  token is delivered anyway (requirement P3: progress under real loss);
* as a latency optimisation the paper also checks on every message arrival
  whether the arrival closed the last gap — if so the buffered token is
  released immediately instead of waiting out the timer.

Monitoring (Figure 5): M+1 receive-count modules — one per message origin
and one for the token.  A network whose count lags the best network by more
than a threshold is declared faulty (P4); lagging counters are topped up
periodically so sporadic loss is forgiven (P5).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..types import NodeId, TIMEOUT_NETWORK
from ..wire.packets import BatchPacket, DataPacket, Token
from .base import ReplicationEngine
from .monitor import RecvCountMonitor


class PassiveReplication(ReplicationEngine):
    """The Figure-4 algorithm plus the Figure-5 monitor modules."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._send_message_via = self.config.num_networks - 1
        self._send_token_via = self.config.num_networks - 1
        self._buffered_token: Optional[Token] = None
        self._token_timer = None
        self._topup_timer = None
        self.token_monitor = RecvCountMonitor(
            self.faults, self.config.recv_count_threshold, label="token")
        self.message_monitors: Dict[NodeId, RecvCountMonitor] = {}

    def start(self) -> None:
        self._schedule_topup()

    def _cancel_timers(self) -> None:
        self._stop_token_timer()
        if self._topup_timer is not None:
            self._topup_timer.cancel()
            self._topup_timer = None

    def _schedule_topup(self) -> None:
        if self._stopped:
            return
        self._topup_timer = self.runtime.set_timer(
            self.config.recv_count_topup_interval, self._on_topup)

    def _on_topup(self) -> None:
        self._note_timer_fired("topup")
        if self._stopped:
            return
        self.token_monitor.topup()
        for monitor in self.message_monitors.values():
            monitor.topup()
        self._schedule_topup()

    def _message_monitor(self, origin: NodeId) -> RecvCountMonitor:
        monitor = self.message_monitors.get(origin)
        if monitor is None:
            monitor = RecvCountMonitor(
                self.faults, self.config.recv_count_threshold,
                label=f"messages from {origin}")
            self.message_monitors[origin] = monitor
        return monitor

    def _style_digest(self) -> tuple:
        return (self._send_message_via, self._send_token_via,
                self._packet_digest(self._buffered_token),
                self._timer_digest(self._token_timer),
                self._timer_digest(self._topup_timer),
                tuple(self.token_monitor.recv_count),
                tuple((origin, tuple(monitor.recv_count))
                      for origin, monitor
                      in sorted(self.message_monitors.items())))

    # ----- sends: round-robin over non-faulty networks -----

    def _next_network(self, current: int) -> int:
        for _ in range(self.config.num_networks):
            current = (current + 1) % self.config.num_networks
            if not self.faults.is_faulty(current):
                return current
        return current  # all faulty (cannot happen: last never marked)

    def broadcast_data(self, packet: DataPacket) -> None:
        self.stats.data_sends += 1
        self._send_message_via = self._next_network(self._send_message_via)
        self.stack.broadcast(self._send_message_via, packet)

    def broadcast_batch(self, batch: BatchPacket) -> None:
        # One round-robin slot per frame train, exactly as for one frame.
        self.stats.data_sends += 1
        self._send_message_via = self._next_network(self._send_message_via)
        self.stack.broadcast(self._send_message_via, batch)

    def send_token(self, token: Token, dest: NodeId) -> None:
        self.stats.token_sends += 1
        self._send_token_via = self._next_network(self._send_token_via)
        self.stack.unicast(self._send_token_via, dest, token)

    # ----- receives -----

    def recv_data(self, packet: DataPacket, network: int) -> None:
        duplicate = self.srp.is_duplicate_data(packet)
        self.srp.on_data(packet, network)
        if not duplicate:
            # Retransmitted copies are rebroadcast by whichever node holds
            # them, on that node's round-robin position — counting them
            # against the *original* sender's monitor only adds noise.
            self._message_monitor(packet.sender).record(network)
        # Latency optimisation from §6: this message may have been the last
        # gap blocking a buffered token.
        buffered = self._buffered_token
        if (buffered is not None
                and not self.srp.has_gaps_up_to(buffered.seq)):
            self._release_buffered(network)

    def recv_batch(self, batch: BatchPacket, network: int) -> None:
        duplicate = self.srp.is_duplicate_batch(batch)
        self.srp.on_batch(batch, network)
        if not duplicate:
            # One frame arrived on this network; the monitor counts frames,
            # not carried packets, so a batch records once (all nodes batch
            # identically, so the per-network comparison stays symmetric).
            self._message_monitor(batch.sender).record(network)
        # The per-packet applies were *posted*, not run: the §6 gap-closure
        # check must observe the SRP after they land, so it is posted too
        # (FIFO order puts it behind every apply from this frame).
        self.runtime.post(self._check_gap_closed, network)

    def _check_gap_closed(self, network: int) -> None:
        """Posted after a batch's applies: release the buffered token if the
        batch closed its last gap (the recv_data latency optimisation)."""
        if self._stopped:
            return
        buffered = self._buffered_token
        if (buffered is not None
                and not self.srp.has_gaps_up_to(buffered.seq)):
            self._release_buffered(network)

    def recv_token(self, token: Token, network: int) -> None:
        self.token_monitor.record(network)
        buffered = self._buffered_token
        if (buffered is not None and token.ring_id == buffered.ring_id
                and token.stamp <= buffered.stamp):
            # A retransmitted copy of (or a straggler older than) the token
            # already waiting in the buffer: the buffered one subsumes it.
            # Re-buffering it would double-count ``tokens_buffered`` and the
            # original code let it inherit the old token's partially elapsed
            # timer.
            self.stats.stale_tokens_dropped += 1
            return
        if (token.ring_id == self.srp.ring_id
                and self.srp.has_gaps_up_to(token.seq)):
            # Messages are missing: they may be merely delayed on another
            # network (Figure 3 scenarios).  Buffer the token (P1).
            if buffered is not None:
                # A newer token arrived while an older one was buffered.
                # The new token subsumes the old one's sequencing state (the
                # SRP would reject the old one as a duplicate stamp), so the
                # old token is dropped explicitly, counted, and the timer is
                # restarted so the new token gets its full timeout.
                self._drop_superseded()
            self._buffered_token = token
            self.stats.tokens_buffered += 1
            self._start_token_timer()
            return
        if buffered is not None and token.ring_id == self.srp.ring_id:
            # A newer current-ring token with nothing missing: deliver it
            # and retire the superseded buffered token (its timer must not
            # fire later and push a stale token into the SRP).  A foreign
            # ring's token (passed up for the SRP to discard) does not
            # supersede anything.
            self._drop_superseded()
        self.stats.tokens_delivered += 1
        self.srp.on_token(token, network)

    def _start_token_timer(self) -> None:
        self._stop_token_timer()
        self._token_timer = self.runtime.set_timer(
            self.config.passive_token_timeout, self._on_token_timeout)

    def _stop_token_timer(self) -> None:
        if self._token_timer is not None:
            self._token_timer.cancel()
            self._token_timer = None

    def _drop_superseded(self) -> None:
        self._buffered_token = None
        self._stop_token_timer()
        self.stats.tokens_superseded += 1

    def _release_buffered(self, network: int) -> None:
        token = self._buffered_token
        self._buffered_token = None
        self._stop_token_timer()
        if token is not None:
            self.stats.tokens_buffer_released += 1
            self.stats.tokens_delivered += 1
            self.srp.on_token(token, network)

    def _on_token_timeout(self) -> None:
        self._note_timer_fired("token")
        self._token_timer = None
        if self._stopped or self._buffered_token is None:
            return
        self.stats.token_timer_expiries += 1
        self._note_token_timeout("passive-gap")
        self._release_buffered(network=TIMEOUT_NETWORK)
