"""Construct the replication engine named in a :class:`TotemConfig`."""

from __future__ import annotations

from typing import Optional

from ..config import TotemConfig
from ..errors import ConfigError
from ..sim.runtime import Runtime
from ..types import FaultReportFn, NodeId, ReplicationStyle
from .active import ActiveReplication
from .active_passive import ActivePassiveReplication
from .base import ReplicationEngine, SingleNetwork
from .passive import PassiveReplication

_ENGINES = {
    ReplicationStyle.NONE: SingleNetwork,
    ReplicationStyle.ACTIVE: ActiveReplication,
    ReplicationStyle.PASSIVE: PassiveReplication,
    ReplicationStyle.ACTIVE_PASSIVE: ActivePassiveReplication,
}


def make_replication_engine(
    node_id: NodeId,
    config: TotemConfig,
    runtime: Runtime,
    stack,
    on_fault_report: Optional[FaultReportFn] = None,
) -> ReplicationEngine:
    """Build the RRP engine for ``config.replication``.

    ``stack`` is the node's network stack (simulated or UDP-backed); its
    receive handler is claimed by the returned engine.
    """
    try:
        engine_cls = _ENGINES[config.replication]
    except KeyError:  # pragma: no cover - enum is exhaustive
        raise ConfigError(f"unknown replication style {config.replication!r}")
    if stack.num_networks != config.num_networks:
        raise ConfigError(
            f"stack has {stack.num_networks} networks but config says "
            f"{config.num_networks}")
    return engine_cls(node_id, config, runtime, stack,
                      on_fault_report=on_fault_report)
