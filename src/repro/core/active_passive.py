"""Active-passive replication (paper §7).

A hybrid usable with at least three networks: every message and token is
sent over K of the N networks (1 < K < N), the window of K advancing
round-robin (if the last copy went via network m, the next packet uses
networks m+1 … m+K mod N).  Up to K-1 lossy networks are masked without any
retransmission delay, at K× (not N×) bandwidth cost.

The receive side is the two-stage pipeline §7 describes:

* **stage 1 (passive-style)**: receive-count monitor modules observe every
  message and token per network;
* **stage 2 (active-style)**: a token is passed up once copies have arrived
  on K distinct networks, or when the token timer expires.

One addition on top of the paper's sketch: because a message's K-network
window and the token's K-network window need not intersect for K ≤ N/2, K
token copies do not by themselves prove that earlier messages have arrived
(the FIFO argument of §5 holds per shared network only).  We therefore run
the assembled token through the passive gap check as well — if messages are
still missing the token is briefly buffered exactly as in Figure 4.  This
composes the protections of both parents and is noted in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..types import NodeId, TIMEOUT_NETWORK
from ..wire.packets import BatchPacket, DataPacket, Token
from .base import ReplicationEngine
from .monitor import RecvCountMonitor


class ActivePassiveReplication(ReplicationEngine):
    """The §7 two-stage pipeline."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._send_message_via = self.config.num_networks - 1
        self._send_token_via = self.config.num_networks - 1
        # Stage 2 (active-style) token assembly state.
        self._last_token: Optional[Token] = None
        self._recv_flags: List[bool] = [False] * self.config.num_networks
        self._delivered_current = False
        self._assemble_timer = None
        # Passive-style gap buffering after assembly.
        self._buffered_token: Optional[Token] = None
        self._gap_timer = None
        # Stage 1 (passive-style) monitors.
        self.token_monitor = RecvCountMonitor(
            self.faults, self.config.recv_count_threshold, label="token")
        self.message_monitors: Dict[NodeId, RecvCountMonitor] = {}
        self._topup_timer = None

    def start(self) -> None:
        self._schedule_topup()

    def _cancel_timers(self) -> None:
        self._stop_assemble_timer()
        self._stop_gap_timer()
        if self._topup_timer is not None:
            self._topup_timer.cancel()
            self._topup_timer = None

    def _schedule_topup(self) -> None:
        if self._stopped:
            return
        self._topup_timer = self.runtime.set_timer(
            self.config.recv_count_topup_interval, self._on_topup)

    def _on_topup(self) -> None:
        self._note_timer_fired("topup")
        if self._stopped:
            return
        self.token_monitor.topup()
        for monitor in self.message_monitors.values():
            monitor.topup()
        self._schedule_topup()

    def _message_monitor(self, origin: NodeId) -> RecvCountMonitor:
        monitor = self.message_monitors.get(origin)
        if monitor is None:
            monitor = RecvCountMonitor(
                self.faults, self.config.recv_count_threshold,
                label=f"messages from {origin}")
            self.message_monitors[origin] = monitor
        return monitor

    def _style_digest(self) -> tuple:
        return (self._send_message_via, self._send_token_via,
                self._packet_digest(self._last_token),
                tuple(self._recv_flags), self._delivered_current,
                self._packet_digest(self._buffered_token),
                self._timer_digest(self._assemble_timer),
                self._timer_digest(self._gap_timer),
                self._timer_digest(self._topup_timer),
                tuple(self.token_monitor.recv_count),
                tuple((origin, tuple(monitor.recv_count))
                      for origin, monitor
                      in sorted(self.message_monitors.items())))

    # ----- sends: K copies, round-robin window -----

    def _window(self, start: int) -> List[int]:
        """The next K non-faulty networks after ``start``, cyclically."""
        chosen: List[int] = []
        current = start
        for _ in range(2 * self.config.num_networks):
            current = (current + 1) % self.config.num_networks
            if not self.faults.is_faulty(current) and current not in chosen:
                chosen.append(current)
                if len(chosen) == self.effective_k():
                    break
        return chosen

    def effective_k(self) -> int:
        """K, capped by how many networks are still operational."""
        return min(self.config.active_passive_k,
                   self.faults.operational_count())

    def broadcast_data(self, packet: DataPacket) -> None:
        self.stats.data_sends += 1
        window = self._window(self._send_message_via)
        for i in window:
            self.stack.broadcast(i, packet)
        if window:
            self._send_message_via = window[-1]

    def broadcast_batch(self, batch: BatchPacket) -> None:
        # K copies of the whole frame train, advancing the same window as a
        # single data frame would.
        self.stats.data_sends += 1
        window = self._window(self._send_message_via)
        for i in window:
            self.stack.broadcast(i, batch)
        if window:
            self._send_message_via = window[-1]

    def send_token(self, token: Token, dest: NodeId) -> None:
        self.stats.token_sends += 1
        window = self._window(self._send_token_via)
        for i in window:
            self.stack.unicast(i, dest, token)
        if window:
            self._send_token_via = window[-1]

    # ----- receives -----

    def recv_data(self, packet: DataPacket, network: int) -> None:
        duplicate = self.srp.is_duplicate_data(packet)
        self.srp.on_data(packet, network)
        if not duplicate:
            self._message_monitor(packet.sender).record(network)
        buffered = self._buffered_token
        if (buffered is not None
                and not self.srp.has_gaps_up_to(buffered.seq)):
            self._release_buffered(network)

    def recv_batch(self, batch: BatchPacket, network: int) -> None:
        # Same shape as passive replication's batch receive: monitor records
        # once per frame, and the gap-closure check is posted so it runs
        # after the SRP's per-packet applies from this frame train.
        duplicate = self.srp.is_duplicate_batch(batch)
        self.srp.on_batch(batch, network)
        if not duplicate:
            self._message_monitor(batch.sender).record(network)
        self.runtime.post(self._check_gap_closed, network)

    def _check_gap_closed(self, network: int) -> None:
        if self._stopped:
            return
        buffered = self._buffered_token
        if (buffered is not None
                and not self.srp.has_gaps_up_to(buffered.seq)):
            self._release_buffered(network)

    def recv_token(self, token: Token, network: int) -> None:
        self.token_monitor.record(network)
        if token.ring_id != self.srp.ring_id:
            # Same guard as active replication: a delayed token from a
            # previous ring must not reset the stage-2 assembly state of the
            # current ring's token.
            self.stats.foreign_ring_tokens += 1
            return
        last = self._last_token
        is_new = (last is None
                  or token.ring_id != last.ring_id
                  or token.stamp > last.stamp)
        if is_new:
            self._last_token = token
            self._recv_flags = [False] * self.config.num_networks
            self._recv_flags[network] = True
            self._delivered_current = False
            self.stats.tokens_merged += 1
            self._start_assemble_timer()
        elif token.ring_id == last.ring_id and token.stamp == last.stamp:
            self._recv_flags[network] = True
            if self._delivered_current:
                self.stats.late_token_copies += 1
        else:
            self.stats.stale_tokens_dropped += 1
            return

        if self._delivered_current:
            return
        if sum(self._recv_flags) >= self.effective_k():
            self._stop_assemble_timer()
            self._deliver_assembled(network)

    def _deliver_assembled(self, network: int) -> None:
        """Stage 2 complete: run the token through the passive gap check."""
        assert self._last_token is not None
        self._delivered_current = True
        token = self._last_token
        if self.probe is not None:
            self.probe.engine_token_up(token, network)
        if self._buffered_token is not None:
            # A newer token finished assembly while an older one was still
            # gap-buffered: the new token supersedes it (same reasoning as
            # passive replication's supersession handling).
            self._drop_superseded()
        if (token.ring_id == self.srp.ring_id
                and self.srp.has_gaps_up_to(token.seq)):
            self._buffered_token = token
            self.stats.tokens_buffered += 1
            self._start_gap_timer()
            return
        self.stats.tokens_delivered += 1
        self.srp.on_token(token, network)

    def _start_gap_timer(self) -> None:
        self._stop_gap_timer()
        self._gap_timer = self.runtime.set_timer(
            self.config.passive_token_timeout, self._on_gap_timeout)

    def _stop_gap_timer(self) -> None:
        if self._gap_timer is not None:
            self._gap_timer.cancel()
            self._gap_timer = None

    def _drop_superseded(self) -> None:
        self._buffered_token = None
        self._stop_gap_timer()
        self.stats.tokens_superseded += 1

    def _release_buffered(self, network: int) -> None:
        token = self._buffered_token
        self._buffered_token = None
        self._stop_gap_timer()
        if token is not None:
            self.stats.tokens_buffer_released += 1
            self.stats.tokens_delivered += 1
            self.srp.on_token(token, network)

    def _on_gap_timeout(self) -> None:
        self._note_timer_fired("gap")
        self._gap_timer = None
        if self._stopped:
            return
        if self._buffered_token is not None:
            self.stats.token_timer_expiries += 1
            self._note_token_timeout("ap-gap")
            self._release_buffered(network=TIMEOUT_NETWORK)

    # ----- stage-2 token timer -----

    def _start_assemble_timer(self) -> None:
        self._stop_assemble_timer()
        self._assemble_timer = self.runtime.set_timer(
            self.config.active_token_timeout, self._on_assemble_timeout)

    def _stop_assemble_timer(self) -> None:
        if self._assemble_timer is not None:
            self._assemble_timer.cancel()
            self._assemble_timer = None

    def _on_assemble_timeout(self) -> None:
        self._note_timer_fired("assemble")
        self._assemble_timer = None
        if self._stopped:
            return
        if self._last_token is None or self._delivered_current:
            return
        self.stats.token_timer_expiries += 1
        self._note_token_timeout("ap-assemble")
        self._deliver_assembled(network=TIMEOUT_NETWORK)
