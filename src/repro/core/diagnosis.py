"""Fault diagnosis from the RRP's fault reports (paper §3).

The paper: "The order in which the fault reports are issued and the content
of those reports aids the user in diagnosing of the problem."  This module
automates that reasoning: given the fault reports collected from all nodes,
:func:`diagnose` infers the most likely physical fault.

The signatures it distinguishes (all derived from §3's fault model and the
monitor designs of §5/§6):

* **total network failure** — every node marks the same network within a
  short window, none of the reports single out a specific origin;
* **receive-path fault at node V** — V reports the network first (its
  token/message monitors starve), then the *other* nodes mark the network
  citing "messages from V" once V stops sending on it (the §3 propagation
  rule);
* **send-path fault at node V** — the other nodes mark the network citing
  "messages from V" but V itself never reports it (V receives fine);
* **sporadic degradation** — reports exist but are not corroborated by a
  quorum; likely loss bursts or a marginal component.
"""

from __future__ import annotations

import enum
import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..types import FaultKind, FaultReport, NetworkIndex, NodeId

#: Monitors cite origins as "messages from <node>" (see RecvCountMonitor).
_ORIGIN_RE = re.compile(r"messages from (\d+)")


class FaultHypothesis(enum.Enum):
    """What the reports point to."""

    TOTAL_NETWORK_FAILURE = "total network failure"
    NODE_RECEIVE_FAULT = "node receive-path fault"
    NODE_SEND_FAULT = "node send-path fault"
    SPORADIC_DEGRADATION = "sporadic degradation"


@dataclass(frozen=True)
class Diagnosis:
    """One inferred physical fault."""

    hypothesis: FaultHypothesis
    network: NetworkIndex
    #: The implicated node for send/receive-path faults, else None.
    node: Optional[NodeId]
    #: Fraction of expected corroborating nodes that reported.
    confidence: float
    explanation: str
    reports: Sequence[FaultReport] = field(default=(), compare=False)

    def __str__(self) -> str:
        where = f" at node {self.node}" if self.node is not None else ""
        return (f"{self.hypothesis.value}{where} on network {self.network} "
                f"(confidence {self.confidence:.0%}): {self.explanation}")


def _cited_origin(report: FaultReport) -> Optional[NodeId]:
    match = _ORIGIN_RE.search(report.detail)
    return int(match.group(1)) if match else None


def diagnose(reports: Sequence[FaultReport],
             all_nodes: Sequence[NodeId],
             window: float = 2.0) -> List[Diagnosis]:
    """Infer physical faults from fault reports of a whole cluster.

    ``all_nodes`` is the cluster membership (needed to judge corroboration:
    a report only some nodes can make is itself a signature).  ``window``
    bounds how far apart, in report-time seconds, corroborating reports of
    one fault may lie.

    Returns one :class:`Diagnosis` per implicated network, ordered by
    first-report time.  Restore reports clear earlier failure reports for
    the same (node, network).
    """
    nodes = set(all_nodes)
    # Keep only failure reports that were not later cleared.
    active: Dict[tuple, FaultReport] = {}
    for report in sorted(reports, key=lambda r: r.time):
        key = (report.node, report.network)
        if report.kind is FaultKind.NETWORK_FAILED:
            active.setdefault(key, report)
        elif report.kind is FaultKind.NETWORK_RESTORED:
            active.pop(key, None)

    by_network: Dict[NetworkIndex, List[FaultReport]] = defaultdict(list)
    for report in sorted(active.values(), key=lambda r: r.time):
        by_network[report.network].append(report)

    diagnoses: List[Diagnosis] = []
    for network, net_reports in sorted(by_network.items(),
                                       key=lambda kv: kv[1][0].time):
        first = net_reports[0]
        in_window = [r for r in net_reports if r.time - first.time <= window]
        reporters: Set[NodeId] = {r.node for r in in_window}
        cited = [_cited_origin(r) for r in in_window]
        cited_nodes = {c for c in cited if c is not None}

        if reporters == nodes and len(cited_nodes) <= 1 and not cited_nodes:
            diagnoses.append(Diagnosis(
                hypothesis=FaultHypothesis.TOTAL_NETWORK_FAILURE,
                network=network, node=None, confidence=1.0,
                explanation=(f"all {len(nodes)} nodes marked network "
                             f"{network} within {window}s with no specific "
                             f"origin implicated"),
                reports=tuple(in_window)))
            continue

        # A single origin cited by (most of) the others?
        if len(cited_nodes) == 1:
            victim = next(iter(cited_nodes))
            others = nodes - {victim}
            corroborators = {r.node for r in in_window
                             if _cited_origin(r) == victim}
            confidence = len(corroborators) / max(1, len(others))
            if victim in reporters and first.node == victim:
                diagnoses.append(Diagnosis(
                    hypothesis=FaultHypothesis.NODE_RECEIVE_FAULT,
                    network=network, node=victim, confidence=confidence,
                    explanation=(f"node {victim} starved first on network "
                                 f"{network}; {len(corroborators)} other "
                                 f"node(s) then stopped hearing node "
                                 f"{victim} there (the §3 propagation "
                                 f"signature)"),
                    reports=tuple(in_window)))
                continue
            if victim not in reporters:
                diagnoses.append(Diagnosis(
                    hypothesis=FaultHypothesis.NODE_SEND_FAULT,
                    network=network, node=victim, confidence=confidence,
                    explanation=(f"{len(corroborators)} node(s) stopped "
                                 f"hearing node {victim} on network "
                                 f"{network}, but node {victim} itself "
                                 f"receives normally there"),
                    reports=tuple(in_window)))
                continue

        if reporters == nodes:
            diagnoses.append(Diagnosis(
                hypothesis=FaultHypothesis.TOTAL_NETWORK_FAILURE,
                network=network, node=None,
                confidence=len(reporters) / len(nodes),
                explanation=(f"all nodes marked network {network}; mixed "
                             f"report contents suggest the failure was "
                             f"observed through several monitors"),
                reports=tuple(in_window)))
            continue

        diagnoses.append(Diagnosis(
            hypothesis=FaultHypothesis.SPORADIC_DEGRADATION,
            network=network, node=None,
            confidence=len(reporters) / len(nodes),
            explanation=(f"only {sorted(reporters)} of {sorted(nodes)} "
                         f"marked network {network}; not corroborated by "
                         f"a full quorum"),
            reports=tuple(in_window)))
    return diagnoses


def format_diagnoses(diagnoses: Sequence[Diagnosis]) -> str:
    """Human-readable multi-line rendering."""
    if not diagnoses:
        return "no faults diagnosed"
    return "\n".join(f"- {d}" for d in diagnoses)
