"""Select the compiled or pure-Python implementation of each hot path.

The repo ships every hot path twice: a pure-Python implementation (the
reference — always present, always correct) and an optional C twin in
:mod:`repro._fast`.  This facade is the single switch between them.  The
hot call sites read a slot attribute on :mod:`repro._fast` per call::

    fast = _fast.scheduler_run_until
    if fast is not None:
        return fast(self, t)
    ...pure implementation...

so flipping modes rebinds a handful of attributes and takes effect
immediately, even for objects constructed earlier.  The equivalence tests
use exactly that to run one world pure and one compiled in a single
process and compare delivery logs byte for byte.

The slots live on :mod:`repro._fast` (an import-graph leaf) rather than
here because the modules reading them sit *below* :mod:`repro.core`; this
facade is their only writer.

Modes
-----
* ``compiled`` — the default whenever ``repro._fast._corec`` imports
  (i.e. it was built with ``python tools/build_accel.py`` and
  ``REPRO_PURE`` is unset).
* ``pure`` — the reference implementations; always available.

:func:`activate` runs once from the bottom of ``repro/__init__.py`` (by
which point every module the C core needs is loaded) and selects
``compiled`` when available.  ``REPRO_PURE=1`` in the environment refuses
the extension import entirely (see :mod:`repro._fast`), making ``pure``
the only mode — the escape hatch for bisecting a suspected accel bug or
pinning a benchmark to the interpreter.

State containers (:class:`repro._fast._corec.ReceiveBuffer`,
``Reassembler``) are chosen at *construction* time by factories in
``srp.ordering`` / ``srp.packing`` — an engine built in compiled mode
keeps its compiled buffers even if the mode later flips (both the C and
pure sweeps accept either container, so mixed worlds stay correct).
"""

from __future__ import annotations

from .. import _fast
from .._fast import corec

_mode = "pure"
_bound = False
_activated = False


def available() -> bool:
    """Whether the compiled extension imported (built, and not REPRO_PURE)."""
    return corec is not None


def mode() -> str:
    """The active mode: ``"compiled"`` or ``"pure"``."""
    return _mode


def enabled() -> bool:
    """Whether the compiled implementations are active right now."""
    return _mode == "compiled"


def _bind() -> None:
    """Hand the C core the Python objects it compares against / constructs.

    Deferred (not at module import) because ``SrpState`` lives in
    :mod:`repro.srp.engine`, which sits above the modules that read the
    slots — by the time anything calls :func:`use_compiled` the engine
    module is importable without a cycle.
    """
    global _bound
    if _bound or corec is None:
        return
    from ..errors import (
        ChecksumError,
        CodecError,
        SimulationError,
        TransportError,
    )
    from ..core.base import ReplicationEngine
    from ..net.simlan import LanPort, SimLan
    from ..net.stack import NetworkStack, NodeCpu, _PortDeliver, _RecvJobCost
    from ..srp.engine import SrpState, TotemSrp
    from ..types import DeliveredMessage, DeliveryLog, RingId
    from ..wire.packets import (
        BATCH_BASE_BYTES,
        BATCH_MAX_PACKETS,
        BATCH_SUB_HEADER_BYTES,
        CHUNK_HEADER_BYTES,
        BatchPacket,
        Chunk,
        ChunkKind,
        DataPacket,
    )

    corec.bind(SimulationError, DeliveredMessage, ChunkKind.APP,
               SrpState.RECOVERY,
               Chunk, DataPacket, BatchPacket, RingId,
               CodecError, ChecksumError,
               TransportError, DeliveryLog.on_deliver,
               _RecvJobCost, NetworkStack._dispatch,
               TotemSrp._apply_batched_packet, TotemSrp._deliver_after_batch,
               SimLan._fanout, NodeCpu._finish,
               _PortDeliver, ReplicationEngine._recv_cost,
               TotemSrp._try_deliver, NodeCpu.submit,
               LanPort.broadcast, LanPort.unicast,
               ReplicationEngine.on_packet, ReplicationEngine.recv_batch,
               TotemSrp.on_batch,
               CHUNK_HEADER_BYTES, BATCH_BASE_BYTES,
               BATCH_SUB_HEADER_BYTES, BATCH_MAX_PACKETS)
    _bound = True


def use_compiled() -> None:
    """Switch every hot path to the C implementations.

    Raises :class:`RuntimeError` when the extension is unavailable
    (not built, or disabled via ``REPRO_PURE=1``).
    """
    global _mode, _activated
    if corec is None:
        raise RuntimeError(
            "compiled core unavailable: build it with "
            "`python tools/build_accel.py` (and unset REPRO_PURE)")
    _bind()
    _activated = True
    _fast.scheduler_run_until = corec.run_until
    _fast.engine_try_deliver = corec.try_deliver
    _fast.engine_apply_batched = corec.apply_batched
    _fast.engine_on_batch = corec.on_batch
    _fast.engine_broadcast_batched = corec.broadcast_batched
    _fast.engine_is_duplicate_batch = corec.is_duplicate_batch
    _fast.codec_encode = corec.encode_packet
    _fast.codec_decode = corec.decode_packet
    _fast.cpu_submit = corec.cpu_submit
    _fast.cpu_finish = corec.cpu_finish
    _mode = "compiled"


def use_pure() -> None:
    """Switch every hot path to the pure-Python reference implementations."""
    global _mode, _activated
    _activated = True
    _fast.scheduler_run_until = None
    _fast.engine_try_deliver = None
    _fast.engine_apply_batched = None
    _fast.engine_on_batch = None
    _fast.engine_broadcast_batched = None
    _fast.engine_is_duplicate_batch = None
    _fast.codec_encode = None
    _fast.codec_decode = None
    _fast.cpu_submit = None
    _fast.cpu_finish = None
    _mode = "pure"


def activate() -> None:
    """Select the default mode: compiled when built, pure otherwise.

    Runs once; later calls are no-ops, so an explicit :func:`use_pure` or
    :func:`use_compiled` is never overridden.  Called from the bottom of
    ``repro/__init__.py`` so every program has the fast paths armed
    without further ceremony.
    """
    global _activated
    if _activated:
        return
    _activated = True
    if corec is not None:
        use_compiled()
