"""Network health monitors (paper §3, §5 and Figure 5).

Both monitor families operate entirely locally: they observe received
messages and tokens, and never send probes.

* :class:`ProblemCounterMonitor` (active replication, §5): each time the
  RRP token timer expires, the counter of every network that failed to
  deliver the token copy is incremented; crossing a threshold declares the
  network faulty (requirement A5).  Counters decay periodically so sporadic
  token loss never accumulates into a false alarm (requirement A6).

* :class:`RecvCountMonitor` (passive replication, §6, Figure 5): one module
  per message origin plus one for the token.  Each counts receptions per
  network; when the best network leads a lagging one by more than a
  threshold, the laggard is declared faulty (requirement P4).  Lagging
  counters are periodically topped up by one so sporadic loss is forgiven
  (requirement P5).
"""

from __future__ import annotations

from typing import List

from ..types import NetworkIndex
from .reports import NetworkFaultState


class ProblemCounterMonitor:
    """Per-network problem counters for active replication (paper §5)."""

    def __init__(self, faults: NetworkFaultState, threshold: int) -> None:
        self._faults = faults
        self.threshold = threshold
        self.counters: List[int] = [0] * faults.num_networks
        faults.add_restore_listener(self._on_restore)

    def _on_restore(self, network: NetworkIndex) -> None:
        """A repaired network starts with a clean slate."""
        self.counters[network] = 0

    def token_copy_missing(self, network: NetworkIndex) -> None:
        """Called on token-timer expiry for each network that stayed silent."""
        if network < 0:
            # TIMEOUT_NETWORK (or any other sentinel) must never reach the
            # counters: Python's negative indexing would silently charge the
            # *last* network for the problem.
            raise ValueError(f"invalid network index {network}")
        if self._faults.is_faulty(network):
            return
        self.counters[network] += 1
        if self.counters[network] >= self.threshold:
            self._faults.mark_faulty(
                network,
                detail=f"problem counter reached {self.counters[network]} "
                       f"(threshold {self.threshold})")

    def decay(self) -> None:
        """Periodic decrement (requirement A6)."""
        for i, value in enumerate(self.counters):
            if value > 0:
                self.counters[i] = value - 1

    def max_counter(self) -> int:
        """The worst problem counter across networks (observability)."""
        return max(self.counters) if self.counters else 0

    def pressure(self, network: NetworkIndex) -> float:
        """This network's counter as a fraction of the condemnation
        threshold (1.0 = one more silent expiry condemns it)."""
        if self.threshold <= 0:
            return 0.0
        return self.counters[network] / self.threshold


class RecvCountMonitor:
    """One Figure-5 monitoring module: per-network reception counts."""

    def __init__(self, faults: NetworkFaultState, threshold: int,
                 label: str = "") -> None:
        self._faults = faults
        self.threshold = threshold
        self.label = label
        self.recv_count: List[int] = [0] * faults.num_networks
        faults.add_restore_listener(self._on_restore)

    def _on_restore(self, network: NetworkIndex) -> None:
        """A repaired network resumes from the leader's count, not zero."""
        self.recv_count[network] = max(self.recv_count)

    def record(self, network: NetworkIndex) -> None:
        """Count a reception on ``network`` and re-check the lag rule."""
        if network < 0:
            # See ProblemCounterMonitor.token_copy_missing: a sentinel index
            # must fail loudly, not count against the last network.
            raise ValueError(f"invalid network index {network}")
        self.recv_count[network] += 1
        best = max(self.recv_count)
        for i, count in enumerate(self.recv_count):
            if self._faults.is_faulty(i):
                continue
            if best - count > self.threshold:
                self._faults.mark_faulty(
                    i,
                    detail=f"{self.label or 'monitor'}: reception lag "
                           f"{best - count} exceeds threshold {self.threshold}")

    def topup(self) -> None:
        """Periodically forgive lagging networks one reception (P5)."""
        best = max(self.recv_count)
        for i, count in enumerate(self.recv_count):
            if count < best:
                self.recv_count[i] = count + 1

    def skew(self, network: NetworkIndex) -> int:
        """How far this network's count lags the best one (observability)."""
        return max(self.recv_count) - self.recv_count[network]

    def max_skew(self) -> int:
        """The worst lag across networks (max - min reception count)."""
        return max(self.recv_count) - min(self.recv_count)
