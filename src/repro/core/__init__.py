"""The Totem Redundant Ring Protocol — the paper's contribution.

The RRP is a layer between the Totem SRP and the N redundant networks
(paper §4-§7).  It decides which network(s) carry each message and token,
merges the redundant receive streams back into the single stream the SRP
expects, monitors network health entirely locally (no probes — paper §3),
and raises fault reports to the application while the system keeps running
on the surviving networks.

Three replication styles (paper §4):

* :class:`ActiveReplication` — every packet on all N networks (§5, Fig. 2),
* :class:`PassiveReplication` — each packet on one network, round-robin
  (§6, Figs. 4-5),
* :class:`ActivePassiveReplication` — each packet on K of N networks (§7),
* :class:`SingleNetwork` — the degenerate pass-through used for the paper's
  "no replication" baseline.

Use :func:`make_replication_engine` to construct the style named in a
:class:`~repro.config.TotemConfig`.
"""

from .active import ActiveReplication
from .active_passive import ActivePassiveReplication
from .base import ReplicationEngine, SingleNetwork
from .diagnosis import Diagnosis, FaultHypothesis, diagnose, format_diagnoses
from .factory import make_replication_engine
from .monitor import ProblemCounterMonitor, RecvCountMonitor
from .passive import PassiveReplication
from .reports import NetworkFaultState

__all__ = [
    "ReplicationEngine",
    "SingleNetwork",
    "ActiveReplication",
    "PassiveReplication",
    "ActivePassiveReplication",
    "make_replication_engine",
    "NetworkFaultState",
    "ProblemCounterMonitor",
    "RecvCountMonitor",
    "Diagnosis",
    "FaultHypothesis",
    "diagnose",
    "format_diagnoses",
]
