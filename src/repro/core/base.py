"""Base class shared by the RRP replication engines.

A replication engine implements two interfaces at once:

* downward it is the :class:`~repro.srp.engine.RingTransport` the SRP sends
  through (``broadcast_data`` / ``send_token`` / membership traffic);
* upward it is the receive handler of the node's
  :class:`~repro.net.stack.NetworkStack`, dispatching arriving packets by
  type to the style-specific ``recv_data`` / ``recv_token`` hooks.

Membership traffic rides the plain paths (see DESIGN.md): join messages are
broadcast like data packets and duplicate-filtered by the SRP; commit tokens
are idempotent unicasts and are never buffered or merged.  The health
monitors only observe regular data packets and regular tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import TotemConfig
from ..sim.runtime import Runtime
from ..types import FaultReportFn, NodeId
from ..wire.packets import (
    FLAG_LAST,
    BatchPacket,
    CommitToken,
    DataPacket,
    JoinMessage,
    PacketType,
    Token,
    packet_type_of,
)
from .reports import NetworkFaultState


@dataclass
class RrpStats:
    """Counters for the replication layer."""

    data_sends: int = 0
    token_sends: int = 0
    control_sends: int = 0
    tokens_merged: int = 0
    tokens_delivered: int = 0
    tokens_buffered: int = 0
    token_timer_expiries: int = 0
    late_token_copies: int = 0
    #: Buffered tokens later passed up (by timer expiry or gap closure).
    tokens_buffer_released: int = 0
    #: Buffered tokens discarded because a newer token superseded them.
    tokens_superseded: int = 0
    #: Tokens discarded as older than the current/buffered token.
    stale_tokens_dropped: int = 0
    #: Tokens discarded because they belong to a ring the SRP is not on
    #: (e.g. a delayed token from a previous ring incarnation).
    foreign_ring_tokens: int = 0


class ReplicationEngine:
    """Common plumbing for the active/passive/active-passive styles."""

    def __init__(self, node_id: NodeId, config: TotemConfig, runtime: Runtime,
                 stack, on_fault_report: Optional[FaultReportFn] = None) -> None:
        self.node_id = node_id
        self.config = config
        self.runtime = runtime
        self.stack = stack
        self.faults = NetworkFaultState(
            node_id, config.num_networks,
            on_fault_report=on_fault_report, now_fn=runtime.now)
        self.stats = RrpStats()
        self._srp = None
        self._recv_lan_config = getattr(stack, "_lan_config", None)
        self._stopped = False
        #: Optional :class:`repro.check.NodeProbe` observing protocol events.
        self.probe = None
        #: Optional :class:`repro.obs.ClusterObservability` hook (full mode).
        self.obs = None
        stack.set_receive_handler(self.on_packet)

    # ----- wiring -----

    def bind(self, srp) -> None:
        """Attach the SRP engine that sits above this layer."""
        self._srp = srp
        #: Resolved once: the cost classifier runs for every received frame.
        self._recv_lan_config = getattr(self.stack, "_lan_config", None)
        self.stack.set_recv_cost_fn(self._recv_cost)

    def start(self) -> None:
        """Start periodic monitor timers (style-specific)."""

    def stop(self) -> None:
        """Stop this engine (for an abandoned incarnation).

        Cancels every pending engine timer: a stopped incarnation must never
        deliver a token (or decay a monitor) into an SRP that has itself been
        stopped — a pending token timeout surviving ``stop()`` can otherwise
        resurrect protocol activity after a restart.
        """
        self._stopped = True
        self._cancel_timers()

    def _cancel_timers(self) -> None:
        """Cancel every pending engine timer (style-specific)."""

    def _note_timer_fired(self, name: str) -> None:
        """Report a timer callback to the invariant probe (if attached)."""
        if self.probe is not None:
            self.probe.engine_timer_fired(name, self._stopped)

    def _note_token_timeout(self, kind: str) -> None:
        """Report a token-timer expiry to the obs layer (full mode only)."""
        if self.obs is not None:
            self.obs.engine_token_timeout(self.node_id, kind)

    @property
    def srp(self):
        if self._srp is None:
            raise RuntimeError("replication engine not bound to an SRP")
        return self._srp

    # ----- explorer digests (repro.check explore) -----

    def _timer_digest(self, timer):
        """A pending timer as a relative deadline (None when unset)."""
        if timer is None or not timer.active:
            return None
        return round(timer.when - self.runtime.now(), 9)

    def _packet_digest(self, packet):
        """A held packet as canonical wire bytes (None when unset)."""
        if packet is None:
            return None
        from ..wire.codec import encode_packet
        return encode_packet(packet)

    def digest_state(self) -> tuple:
        """Canonical tuple of protocol-visible replication-layer state.

        Statistics counters and fault-report logs are excluded (they never
        feed back into a protocol decision); the fault *marks* are included
        because they steer sends.  See docs/MODELCHECK.md.
        """
        return ("rrp", type(self).__name__, self.node_id,
                tuple(self.faults._faulty), self._stopped,
                self._style_digest())

    def _style_digest(self) -> tuple:
        """Style-specific state folded into :meth:`digest_state`."""
        return ()

    def _recv_cost(self, packet: object) -> float:
        """CPU cost classifier for the network stack (duplicates are cheap)."""
        lan = self._recv_lan_config
        if lan is None:  # pragma: no cover - stack always has a LanConfig
            return 0.0
        size = packet.wire_size()  # type: ignore[attr-defined]
        if isinstance(packet, DataPacket):
            if self._srp is not None and self._srp.is_duplicate_data(packet):
                # Dropped after the sequence-number check: the copy chain
                # still ran, but no ordering/delivery work happens.
                return lan.cpu_per_dup_recv + lan.cpu_per_byte_dup * size
            completed = 0
            for chunk in packet.chunks:
                if chunk.flags & FLAG_LAST:
                    completed += 1
            return (lan.cpu_per_recv + lan.cpu_per_byte_recv * size
                    + lan.cpu_per_msg * completed)
        if isinstance(packet, BatchPacket):
            # One stack traversal for the whole frame train: the per-frame
            # fixed receive cost is paid once, only per-message protocol
            # work still scales with the batch contents.  This is exactly
            # the CPU amortisation batching exists to buy.
            if self._srp is not None and self._srp.is_duplicate_batch(packet):
                return lan.cpu_per_dup_recv + lan.cpu_per_byte_dup * size
            completed = 0
            for sub in packet.packets:
                for chunk in sub.chunks:
                    if chunk.flags & FLAG_LAST:
                        completed += 1
            return (lan.cpu_per_recv + lan.cpu_per_byte_recv * size
                    + lan.cpu_per_msg * completed)
        return lan.cpu_per_recv + lan.cpu_per_byte_recv * size

    # ----- upward dispatch (NetworkStack handler) -----

    def on_packet(self, packet: object, network: int) -> None:
        if self._stopped:
            # A stopped incarnation is a dead process: frames already in
            # flight to it at the moment of the restart still arrive at its
            # abandoned stack, but must not be processed — handling one
            # would re-arm engine timers *after* stop() cancelled them
            # (found by `repro.check explore`: crash + in-flight token +
            # restart re-armed the old engine's token timer).
            return
        # Dispatch on the concrete class: the ``packet_type`` discriminator
        # is a property returning an enum member, which costs a call per
        # frame on the hottest upward path.
        cls = type(packet)
        if cls is DataPacket:
            self.recv_data(packet, network)
        elif cls is BatchPacket:
            self.recv_batch(packet, network)
        elif cls is Token:
            if self.probe is not None:
                self.probe.engine_recv_token(packet, network)
            self.recv_token(packet, network)
        elif cls is JoinMessage:
            self.srp.on_join(packet, network)
        elif cls is CommitToken:
            self.srp.on_commit_token(packet, network)
        else:
            # Fallback for packet subclasses: dispatch on the discriminator
            # (raises TypeError for non-packets), as the fast path above
            # only recognises the concrete wire classes.
            ptype = packet_type_of(packet)
            if ptype is PacketType.DATA:
                self.recv_data(packet, network)  # type: ignore[arg-type]
            elif ptype is PacketType.BATCH:
                self.recv_batch(packet, network)  # type: ignore[arg-type]
            elif ptype is PacketType.TOKEN:
                if self.probe is not None:
                    self.probe.engine_recv_token(packet, network)
                self.recv_token(packet, network)  # type: ignore[arg-type]
            elif ptype is PacketType.JOIN:
                self.srp.on_join(packet, network)
            else:
                self.srp.on_commit_token(packet, network)

    # ----- style-specific hooks -----

    def recv_data(self, packet: DataPacket, network: int) -> None:
        raise NotImplementedError

    def recv_batch(self, batch: BatchPacket, network: int) -> None:
        """Default batch receive: hand the frame train to the SRP.

        The SRP posts one apply per carried packet, so ordering, duplicate
        filtering and delivery run through the exact same per-packet code as
        unbatched traffic.  Styles that observe data arrivals (the passive
        family's monitors and gap-closure check) override this.
        """
        self.srp.on_batch(batch, network)

    def recv_token(self, token: Token, network: int) -> None:
        raise NotImplementedError

    # ----- RingTransport (style-specific sends) -----

    def broadcast_data(self, packet: DataPacket) -> None:
        raise NotImplementedError

    def broadcast_batch(self, batch: BatchPacket) -> None:
        raise NotImplementedError

    def send_token(self, token: Token, dest: NodeId) -> None:
        raise NotImplementedError

    def on_membership_trouble(self) -> None:
        """The SRP entered the membership protocol: re-probe all networks.

        Fault marks only suppress *sending*; if the marks themselves are
        wrong (the Figure-5 monitors can false-positive under sustained
        retransmission load), two nodes can end up sending on disjoint
        networks and the membership protocol livelocks.  Clearing the marks
        restores full connectivity for the gather/commit exchange; a
        genuinely dead network is re-detected by the monitors shortly after
        the new ring forms.  (Corosync's RRP needed the same escape hatch.)
        """
        for network in list(self.faults.faulty_networks):
            self.faults.clear_fault(
                network, detail="re-probing during membership change")

    def broadcast_join(self, join: JoinMessage) -> None:
        """Joins go out on every operational network, in every style.

        Membership traffic is rare, small and critical: a join or commit
        token lost to an unlucky round-robin assignment stalls ring
        formation for a full timeout, and with a deterministic assignment
        the same hop can lose it every retry (a livelock we hit in
        testing).  Replicating it actively costs nothing measurable and the
        SRP deduplicates the copies.  Only steady-state data and regular
        tokens follow the configured replication style.
        """
        self.stats.control_sends += 1
        self._broadcast_control(join)

    def send_commit_token(self, commit: CommitToken, dest: NodeId) -> None:
        """Commit tokens go out on every operational network (see
        :meth:`broadcast_join`); receivers deduplicate by (ring, rotation)."""
        self.stats.control_sends += 1
        self._unicast_control(commit, dest)

    def _broadcast_control(self, packet: object) -> None:
        for i in self.faults.operational_networks:
            self.stack.broadcast(i, packet)

    def _unicast_control(self, packet: object, dest: NodeId) -> None:
        for i in self.faults.operational_networks:
            self.stack.unicast(i, dest, packet)


class SingleNetwork(ReplicationEngine):
    """Degenerate RRP: one network, straight pass-through.

    This is the paper's "no replication" baseline in Figures 6-9, and it is
    also a readable specification of the interface the real styles extend.
    """

    def recv_data(self, packet: DataPacket, network: int) -> None:
        self.srp.on_data(packet, network)

    def recv_token(self, token: Token, network: int) -> None:
        self.stats.tokens_delivered += 1
        self.srp.on_token(token, network)

    def broadcast_data(self, packet: DataPacket) -> None:
        self.stats.data_sends += 1
        self.stack.broadcast(0, packet)

    def broadcast_batch(self, batch: BatchPacket) -> None:
        self.stats.data_sends += 1
        self.stack.broadcast(0, batch)

    def send_token(self, token: Token, dest: NodeId) -> None:
        self.stats.token_sends += 1
        self.stack.unicast(0, dest, token)
