"""Shared network-fault state and fault reporting (paper §3).

When any monitor declares a network faulty, the RRP

* marks the network as failed and stops *sending* over it,
* keeps *accepting* traffic received on it (other nodes may not have
  detected the fault yet),
* issues a :class:`~repro.types.FaultReport` to the application process,
  keeping the administrator in the loop while the system stays up.

One deliberate engineering addition: the RRP refuses to mark the *last*
operational network as faulty.  Refusing keeps the node sending on its only
remaining path; if that network is truly dead, token loss escalates to the
membership protocol anyway, which is the correct system-level response.
"""

from __future__ import annotations

from typing import List, Optional

from ..types import FaultKind, FaultReport, FaultReportFn, NetworkIndex, NodeId


class NetworkFaultState:
    """Per-node view of which redundant networks are usable for sending."""

    def __init__(self, node: NodeId, num_networks: int,
                 on_fault_report: Optional[FaultReportFn] = None,
                 now_fn=None) -> None:
        self.node = node
        self._faulty: List[bool] = [False] * num_networks
        self._on_fault_report = on_fault_report or (lambda report: None)
        self._now_fn = now_fn or (lambda: 0.0)
        self.reports: List[FaultReport] = []
        self._restore_listeners: List = []
        #: Optional :class:`repro.check.NodeProbe` observing fault marks.
        self.probe = None

    def add_restore_listener(self, listener) -> None:
        """Register ``listener(network)`` to run when a fault is cleared.

        Monitors use this to reset their counters — otherwise a counter
        still sitting at its threshold would re-condemn a freshly repaired
        network on the first stray timer expiry.
        """
        self._restore_listeners.append(listener)

    @property
    def num_networks(self) -> int:
        return len(self._faulty)

    def is_faulty(self, network: NetworkIndex) -> bool:
        return self._faulty[network]

    @property
    def faulty_networks(self) -> List[NetworkIndex]:
        return [i for i, bad in enumerate(self._faulty) if bad]

    @property
    def operational_networks(self) -> List[NetworkIndex]:
        return [i for i, bad in enumerate(self._faulty) if not bad]

    def operational_count(self) -> int:
        return len(self._faulty) - sum(self._faulty)

    def mark_faulty(self, network: NetworkIndex, detail: str = "") -> bool:
        """Declare a network faulty.  Returns False if refused or redundant.

        Refused when ``network`` is the last operational network (see module
        docstring); redundant when it is already marked.
        """
        if self._faulty[network]:
            return False
        if self.operational_count() <= 1:
            self._report(network, FaultKind.NETWORK_FAILED,
                         detail + " (refused: last operational network)")
            return False
        self._faulty[network] = True
        if self.probe is not None:
            self.probe.network_marked_faulty(network, self.operational_count())
        self._report(network, FaultKind.NETWORK_FAILED, detail)
        return True

    def clear_fault(self, network: NetworkIndex, detail: str = "") -> bool:
        """Administratively return a repaired network to service."""
        if not self._faulty[network]:
            return False
        self._faulty[network] = False
        for listener in self._restore_listeners:
            listener(network)
        self._report(network, FaultKind.NETWORK_RESTORED, detail)
        return True

    def _report(self, network: NetworkIndex, kind: FaultKind, detail: str) -> None:
        report = FaultReport(node=self.node, network=network, kind=kind,
                             time=self._now_fn(), detail=detail)
        self.reports.append(report)
        self._on_fault_report(report)
