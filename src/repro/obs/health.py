"""Per-network ring-health model with hysteresis.

The RRP's own monitors (paper §5/§6) answer a binary question per node —
"should I stop sending on this network?" — with thresholds tuned to avoid
false positives.  Operators need an earlier, graded signal: a network whose
receive counts are *drifting* or whose problem counters *oscillate* is
degrading long before any node condemns it.  Multi-Ring Paxos (Benz et al.)
makes the same observation: once a system runs many rings over shared
networks, partition/health monitoring has to be a first-class subsystem.

:class:`RingHealthModel` folds, per network and per sampling window:

* **problem pressure** — the worst problem-counter value across nodes,
  normalised by the condemnation threshold (active replication, §5);
* **skew pressure** — the worst receive-count lag across nodes and monitor
  modules, normalised by the condemnation threshold (passive, Figure 5);
* **loss fraction** — frames lost / frames offered on the medium in the
  window (the simulator's ground truth, or 0 when unavailable);
* **fault fraction** — the fraction of nodes currently marking the network
  faulty (a node-level verdict dominates every soft signal).

into a health *score* in [0, 1] with asymmetric first-order smoothing: the
score tracks a degrading target quickly (``gain_down``) and a recovering
target slowly (``gain_up``), so one clean sample after an incident does not
flip the state back.  The discrete *state* (healthy / degraded / failed)
adds a second layer of hysteresis: downgrade and upgrade thresholds are
separated, so a score hovering at a boundary cannot flap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigError

HEALTHY = "healthy"
DEGRADED = "degraded"
FAILED = "failed"


@dataclass(frozen=True)
class HealthInput:
    """One network's observed pressures over one sampling window."""

    problem_pressure: float = 0.0   # max problem counter / threshold
    skew_pressure: float = 0.0      # max recv-count lag / threshold
    loss_fraction: float = 0.0      # frames lost / frames offered
    fault_fraction: float = 0.0     # nodes marking faulty / nodes

    def target(self) -> float:
        """Instantaneous health target implied by this window alone."""
        penalty = (0.6 * min(1.0, max(0.0, self.problem_pressure))
                   + 0.5 * min(1.0, max(0.0, self.skew_pressure))
                   + 0.8 * min(1.0, max(0.0, self.loss_fraction))
                   + 1.0 * min(1.0, max(0.0, self.fault_fraction)))
        return max(0.0, 1.0 - min(1.0, penalty))


@dataclass(frozen=True)
class HealthTransition:
    """One state change of one network."""

    time: float
    network: int
    old_state: str
    new_state: str
    score: float

    def __str__(self) -> str:
        return (f"[t={self.time:.6f}] net{self.network} "
                f"{self.old_state} -> {self.new_state} "
                f"(score {self.score:.2f})")


@dataclass
class NetworkHealth:
    """Current health of one network."""

    network: int
    score: float = 1.0
    state: str = HEALTHY


class RingHealthModel:
    """Folds monitor skew, problem counters and fault verdicts per network.

    Hysteresis parameters (all tunable, defaults chosen so a total network
    failure reaches ``failed`` within a handful of 10 ms samples while a
    single lossy window barely dents the score):

    * ``gain_down`` / ``gain_up`` — first-order smoothing gains applied when
      the instantaneous target is below / above the current score;
    * ``degraded_below`` / ``healthy_above`` — healthy↔degraded thresholds
      (downgrade strictly below the former, upgrade strictly above the
      latter);
    * ``failed_below`` / ``recovered_above`` — degraded↔failed thresholds.
    """

    def __init__(self, num_networks: int, *,
                 gain_down: float = 0.5, gain_up: float = 0.08,
                 degraded_below: float = 0.65, healthy_above: float = 0.85,
                 failed_below: float = 0.25, recovered_above: float = 0.45,
                 ) -> None:
        if num_networks < 1:
            raise ConfigError("health model needs at least one network")
        if not 0.0 < gain_down <= 1.0 or not 0.0 < gain_up <= 1.0:
            raise ConfigError("health gains must be in (0, 1]")
        if not (failed_below < recovered_above
                <= degraded_below < healthy_above):
            raise ConfigError(
                "health thresholds must satisfy failed_below < "
                "recovered_above <= degraded_below < healthy_above")
        self.gain_down = gain_down
        self.gain_up = gain_up
        self.degraded_below = degraded_below
        self.healthy_above = healthy_above
        self.failed_below = failed_below
        self.recovered_above = recovered_above
        self.networks: List[NetworkHealth] = [
            NetworkHealth(network=i) for i in range(num_networks)]
        self.transitions: List[HealthTransition] = []

    # ----- queries -----

    def score(self, network: int) -> float:
        return self.networks[network].score

    def state(self, network: int) -> str:
        return self.networks[network].state

    def scores(self) -> List[float]:
        return [n.score for n in self.networks]

    # ----- update -----

    def update(self, time: float,
               inputs: Sequence[HealthInput]) -> List[NetworkHealth]:
        """Fold one sampling window; returns the per-network health list."""
        if len(inputs) != len(self.networks):
            raise ConfigError(
                f"health update for {len(inputs)} networks, "
                f"model has {len(self.networks)}")
        for health, window in zip(self.networks, inputs):
            target = window.target()
            gain = self.gain_down if target < health.score else self.gain_up
            health.score += gain * (target - health.score)
            new_state = self._next_state(health.state, health.score)
            if new_state != health.state:
                self.transitions.append(HealthTransition(
                    time=time, network=health.network,
                    old_state=health.state, new_state=new_state,
                    score=health.score))
                health.state = new_state
        return self.networks

    def _next_state(self, state: str, score: float) -> str:
        if state == HEALTHY:
            if score < self.failed_below:
                return FAILED
            if score < self.degraded_below:
                return DEGRADED
            return HEALTHY
        if state == DEGRADED:
            if score < self.failed_below:
                return FAILED
            if score > self.healthy_above:
                return HEALTHY
            return DEGRADED
        # FAILED
        if score > self.healthy_above:
            return HEALTHY
        if score > self.recovered_above:
            return DEGRADED
        return FAILED
