"""``python -m repro.obs`` — record instrumented runs and render reports.

Two subcommands:

``record``
    Build a fig6-style saturated cluster with telemetry enabled, script a
    network fault (by default: total failure of network 0 partway through,
    restored later), run it, and write the self-contained run document
    (JSON).  Optional ``--jsonl`` and ``--prom`` side outputs exercise the
    other exporters.

``report``
    Render a run document as a single self-contained HTML file with inline
    SVG timelines.  With no run file, records the default scenario in
    memory first — ``python -m repro.obs report`` works out of the box.

Everything runs on the virtual clock; output is deterministic for a given
seed and configuration.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Any, Dict, Optional, Sequence

from ..api.cluster import SimCluster
from ..bench.runner import build_config
from ..bench.workload import SaturatingWorkload
from ..net.faults import FaultPlan
from ..types import ReplicationStyle
from .export import (
    build_run_document,
    load_run_document,
    prometheus_text,
    write_jsonl,
    write_run_document,
)
from .report import write_report

_STYLES = tuple(style.value for style in ReplicationStyle)


def record_scenario(style: str = "active", num_nodes: int = 4,
                    message_size: int = 700, duration: float = 2.0,
                    seed: int = 1, mode: str = "full",
                    interval: float = 0.01,
                    fault_time: Optional[float] = 0.8,
                    fault_network: int = 0,
                    restore_time: Optional[float] = 1.5,
                    title: Optional[str] = None):
    """Run one instrumented scenario; return ``(document, cluster)``.

    The default scenario is the paper's Figure 6 workload (4 nodes,
    saturating senders, 700-byte messages) with a scripted total failure of
    one network — the run every chart in the report is designed around:
    rotation time blips at the fault, monitors condemn the network, health
    drops, and the ring keeps delivering on the survivors.
    """
    config = build_config(ReplicationStyle(style), num_nodes, seed=seed)
    config = replace(config, obs=mode, obs_interval=interval)
    cluster = SimCluster(config)
    cluster.start()

    plan = FaultPlan()
    if fault_time is not None:
        plan.fail_network(at=fault_time, network=fault_network)
        if restore_time is not None and restore_time > fault_time:
            plan.restore_network(at=restore_time, network=fault_network)
    if plan.events:
        cluster.apply_fault_plan(plan)

    workload = SaturatingWorkload(cluster, message_size)
    workload.start()
    cluster.run_for(duration)
    workload.stop()

    meta = {
        "title": title or (
            f"Totem RRP {style} · {num_nodes} nodes · "
            f"{message_size}B saturating workload"),
        "scenario": ("steady-state" if fault_time is None else
                     f"network {fault_network} fails at t={fault_time:g}s"
                     + (f", restored at t={restore_time:g}s"
                        if restore_time is not None
                        and restore_time > fault_time else "")),
        "message_size": message_size,
        "duration": duration,
    }
    return build_run_document(cluster, meta=meta), cluster


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--style", choices=_STYLES, default="active",
                        help="replication style (default: active)")
    parser.add_argument("--nodes", type=int, default=4,
                        help="cluster size (default: 4)")
    parser.add_argument("--size", type=int, default=700,
                        help="message payload bytes (default: 700)")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="virtual seconds to run (default: 2.0)")
    parser.add_argument("--seed", type=int, default=1,
                        help="simulation seed (default: 1)")
    parser.add_argument("--mode", choices=("sampled", "full"),
                        default="full",
                        help="telemetry mode (default: full)")
    parser.add_argument("--interval", type=float, default=0.01,
                        help="sampling interval, virtual seconds "
                             "(default: 0.01)")
    parser.add_argument("--fault-time", type=float, default=0.8,
                        help="when network --fault-network fails "
                             "(default: 0.8)")
    parser.add_argument("--fault-network", type=int, default=0,
                        help="which network fails (default: 0)")
    parser.add_argument("--restore-time", type=float, default=1.5,
                        help="when the failed network is restored "
                             "(default: 1.5; ignored if <= fault time)")
    parser.add_argument("--no-fault", action="store_true",
                        help="steady-state run, no scripted fault")
    parser.add_argument("--quick", action="store_true",
                        help="short run for smoke tests "
                             "(0.6s, fault at 0.2s, restore at 0.45s)")


def _scenario_kwargs(args: argparse.Namespace) -> Dict[str, Any]:
    duration = args.duration
    fault_time: Optional[float] = args.fault_time
    restore_time: Optional[float] = args.restore_time
    if args.quick:
        duration = min(duration, 0.6)
        fault_time = 0.2
        restore_time = 0.45
    if args.no_fault:
        fault_time = None
        restore_time = None
    return {
        "style": args.style,
        "num_nodes": args.nodes,
        "message_size": args.size,
        "duration": duration,
        "seed": args.seed,
        "mode": args.mode,
        "interval": args.interval,
        "fault_time": fault_time,
        "fault_network": args.fault_network,
        "restore_time": restore_time,
    }


def _cmd_record(args: argparse.Namespace) -> int:
    document, cluster = record_scenario(**_scenario_kwargs(args))
    write_run_document(document, args.out)
    print(f"wrote run document: {args.out} "
          f"({len(document['samples'])} samples, "
          f"{len(document['events'])} events)")
    if args.jsonl:
        write_jsonl(document["samples"], args.jsonl)
        print(f"wrote sample stream: {args.jsonl}")
    if args.prom:
        # The Prometheus exposition renders from the live registry
        # (cumulative histogram buckets), not the document snapshot.
        with open(args.prom, "w", encoding="utf-8") as handle:
            handle.write(prometheus_text(cluster.obs.registry))
        print(f"wrote Prometheus metrics: {args.prom}")
    if args.report:
        write_report(document, args.report)
        print(f"wrote report: {args.report}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.run is not None:
        document = load_run_document(args.run)
        source = args.run
    else:
        document, _ = record_scenario(**_scenario_kwargs(args))
        source = "default scenario (recorded in-process)"
    path = write_report(document, args.out)
    print(f"rendered {source} -> {path} "
          f"({len(document['samples'])} samples, "
          f"{len(document['events'])} events)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Totem RRP telemetry: record instrumented runs and "
                    "render self-contained HTML/SVG reports.")
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="run an instrumented scenario, write the run document")
    _add_scenario_arguments(record)
    record.add_argument("--out", default="totem_run.json",
                        help="run document path (default: totem_run.json)")
    record.add_argument("--jsonl", default=None, metavar="FILE",
                        help="also write the sample stream as JSONL")
    record.add_argument("--prom", default=None, metavar="FILE",
                        help="also write Prometheus text-format metrics")
    record.add_argument("--report", default=None, metavar="FILE",
                        help="also render the HTML report")
    record.set_defaults(func=_cmd_record)

    report = sub.add_parser(
        "report", help="render a run document as self-contained HTML")
    report.add_argument("run", nargs="?", default=None,
                        help="run document from `record`; omitted = record "
                             "the default fault scenario first")
    _add_scenario_arguments(report)
    report.add_argument("--out", default="totem_report.html",
                        help="output HTML path (default: totem_report.html)")
    report.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
