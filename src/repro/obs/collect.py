"""Read-only snapshot collection from live protocol objects.

Every function here walks existing stats structures (``SrpStats``,
``RrpStats``, ``LanStats``, ``CpuStats``, the §5/§6 monitor counters) and
returns plain dicts.  Nothing is mutated and nothing is scheduled, so a
snapshot never perturbs the protocol trajectory — the same guarantee the
invariant checker makes.

The dict keys deliberately match the field names of
:class:`repro.api.stats.NodeSummary` / :class:`~repro.api.stats.LanSummary`
(a superset of them), so the summary layer builds its dataclasses straight
from these snapshots instead of duplicating the counter plumbing.
"""

from __future__ import annotations

from typing import Any, Dict, List


def snapshot_node(node, elapsed: float) -> Dict[str, Any]:
    """Everything one node exposes, as one flat dict."""
    srp = node.srp.stats
    rrp = node.rrp.stats
    return {
        "node": node.node_id,
        "state": node.srp.state.value,
        # SRP counters.
        "msgs_submitted": srp.msgs_submitted,
        "msgs_delivered": srp.msgs_delivered,
        "bytes_delivered": srp.bytes_delivered,
        "packets_broadcast": srp.packets_broadcast,
        "packets_received": srp.packets_received,
        "duplicate_packets": srp.duplicate_packets,
        "retransmissions_served": srp.retransmissions_served,
        "retransmission_requests": srp.retransmission_requests,
        "tokens_accepted": srp.tokens_accepted,
        "tokens_sent": srp.tokens_sent,
        "token_retransmits": srp.token_retransmits,
        "token_loss_events": srp.token_loss_events,
        "gathers_entered": srp.gathers_entered,
        "membership_changes": srp.membership_changes,
        "rotation_count": srp.rotation_count,
        "rotation_time_total": srp.rotation_time_total,
        "rotation_time_max": srp.rotation_time_max,
        "send_queue_depth": node.srp.send_queue_depth,
        # RRP counters.
        "token_timer_expiries": rrp.token_timer_expiries,
        "tokens_buffered": rrp.tokens_buffered,
        "tokens_superseded": rrp.tokens_superseded,
        "faulty_networks": sorted(node.faulty_networks),
        "fault_reports": len(node.log.fault_reports),
        # CPU.
        "cpu_utilization": node.cpu.stats.utilization(elapsed),
        "cpu_operations": node.cpu.stats.operations,
        "cpu_queue_depth": node.cpu.queue_depth,
    }


def snapshot_lan(lan, elapsed: float) -> Dict[str, Any]:
    """One network's traffic accounting (see :class:`LanStats.snapshot`)."""
    snap = lan.stats.snapshot(elapsed)
    snap["index"] = lan.index
    return snap


def snapshot_scheduler(scheduler) -> Dict[str, Any]:
    """Simulator-core metrics (see :meth:`EventScheduler.metrics`)."""
    return scheduler.metrics()


def monitor_pressures(node, num_networks: int) -> Dict[str, List[float]]:
    """Per-network monitor pressure in units of "fractions of condemnation".

    * ``problem`` — the §5 problem counter over its threshold (active and
      the single-network baseline report zeros when no monitor exists);
    * ``skew`` — the worst Figure-5 receive-count lag over its threshold,
      across the token monitor and every per-origin message monitor.

    1.0 means "one more bad sample condemns the network"; values are not
    clamped so a probe can see how far past the threshold a counter went
    before the fault mark reset it.
    """
    problem = [0.0] * num_networks
    skew = [0.0] * num_networks
    engine = node.rrp
    monitor = getattr(engine, "monitor", None)
    if monitor is not None:
        for i in range(min(num_networks, len(monitor.counters))):
            problem[i] = monitor.pressure(i)
    monitors = []
    token_monitor = getattr(engine, "token_monitor", None)
    if token_monitor is not None:
        monitors.append(token_monitor)
    monitors.extend(getattr(engine, "message_monitors", {}).values())
    for module in monitors:
        if module.threshold <= 0:
            continue
        for i in range(min(num_networks, len(module.recv_count))):
            lag = module.skew(i) / module.threshold
            if lag > skew[i]:
                skew[i] = lag
    return {"problem": problem, "skew": skew}
