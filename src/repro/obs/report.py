"""Self-contained HTML/SVG run reports.

Renders a :func:`repro.obs.export.build_run_document` document as a single
HTML file with inline SVG timelines — token rotation per node, medium
utilization and ring-health score per network — with fault injections,
fault reports and membership milestones drawn as vertical markers.  No
external assets, no JavaScript: the file opens anywhere and diffs cleanly.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Sequence, Tuple

from ..bench.svg import timeseries_to_svg

#: Event kinds -> marker colour.  Anything else gets grey.
_EVENT_COLORS = {
    "fault-injected": "#c0392b",
    "fault-report:network_failed": "#d35400",
    "fault-report:network_restored": "#27ae60",
    "health-transition": "#8e44ad",
    "membership:gather": "#7f8c8d",
    "membership:ring-installed": "#1f6f8b",
    "membership:restart": "#2c3e50",
    "token-loss": "#c0392b",
}

#: Kinds drawn as chart markers (token timeouts are too frequent to draw).
_MARKER_KINDS = tuple(_EVENT_COLORS)


def _event_markers(document: Dict[str, Any],
                   limit: int = 40) -> List[Tuple[float, str, str]]:
    """(time, color, label) markers for the charts, oldest first, capped."""
    markers: List[Tuple[float, str, str]] = []
    for event in document.get("events", []):
        kind = event["kind"]
        if kind not in _MARKER_KINDS:
            continue
        color = _EVENT_COLORS.get(kind, "#7f8c8d")
        label = kind.split(":")[-1]
        if event.get("network") is not None:
            label += f" n{event['network']}"
        markers.append((event["time"], color, label))
        if len(markers) >= limit:
            break
    return markers


def _series_rotation(document: Dict[str, Any]) -> Dict[str, List[Tuple[float, float]]]:
    series: Dict[str, List[Tuple[float, float]]] = {}
    for row in document["samples"]:
        for node_id, snap in sorted(row["nodes"].items(), key=lambda kv: int(kv[0])):
            value = snap.get("window_rotation_mean", 0.0) * 1e3  # -> ms
            series.setdefault(f"node {node_id}", []).append((row["t"], value))
    return series


def _series_queue_depth(document: Dict[str, Any]) -> Dict[str, List[Tuple[float, float]]]:
    series: Dict[str, List[Tuple[float, float]]] = {}
    for row in document["samples"]:
        for node_id, snap in sorted(row["nodes"].items(), key=lambda kv: int(kv[0])):
            series.setdefault(f"node {node_id}", []).append(
                (row["t"], snap.get("send_queue_depth", 0)))
    return series


def _series_utilization(document: Dict[str, Any]) -> Dict[str, List[Tuple[float, float]]]:
    series: Dict[str, List[Tuple[float, float]]] = {}
    for row in document["samples"]:
        for lan in row["lans"]:
            series.setdefault(f"net{lan['index']}", []).append(
                (row["t"], lan.get("window_utilization", 0.0)))
    return series


def _series_health(document: Dict[str, Any]) -> Dict[str, List[Tuple[float, float]]]:
    series: Dict[str, List[Tuple[float, float]]] = {}
    for row in document["samples"]:
        for entry in row.get("health", []):
            series.setdefault(f"net{entry['network']}", []).append(
                (row["t"], entry["score"]))
    return series


def _series_skew(document: Dict[str, Any]) -> Dict[str, List[Tuple[float, float]]]:
    """Worst monitor pressure per network over time (skew or problem)."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for row in document["samples"]:
        nets: Dict[int, float] = {}
        for snap in row["nodes"].values():
            for i, value in enumerate(snap.get("monitor_skew", [])):
                nets[i] = max(nets.get(i, 0.0), value)
            for i, value in enumerate(snap.get("monitor_problem", [])):
                nets[i] = max(nets.get(i, 0.0), value)
        for i, value in sorted(nets.items()):
            series.setdefault(f"net{i}", []).append((row["t"], value))
    return series


def _events_table(events: Sequence[Dict[str, Any]], limit: int = 200) -> str:
    rows = []
    for event in events[:limit]:
        who = "" if event.get("node") is None else f"node {event['node']}"
        where = "" if event.get("network") is None else f"net{event['network']}"
        rows.append(
            "<tr>"
            f"<td>{event['time']:.6f}</td>"
            f"<td>{html.escape(event['kind'])}</td>"
            f"<td>{who} {where}</td>"
            f"<td>{html.escape(event.get('detail', ''))}</td>"
            "</tr>")
    more = ""
    if len(events) > limit:
        more = (f"<p class='muted'>({len(events) - limit} further events "
                f"omitted)</p>")
    return ("<table><thead><tr><th>t (s)</th><th>kind</th><th>where</th>"
            "<th>detail</th></tr></thead><tbody>"
            + "".join(rows) + "</tbody></table>" + more)


def render_report(document: Dict[str, Any]) -> str:
    """The full HTML report for one run document."""
    config = document.get("config", {})
    meta = document.get("meta", {})
    markers = _event_markers(document)
    charts: List[Tuple[str, str]] = []

    rotation = _series_rotation(document)
    if any(points for points in rotation.values()):
        charts.append(("Token rotation", timeseries_to_svg(
            rotation, title="Token rotation time (windowed mean)",
            y_label="rotation (ms)", events=markers, y_min=0.0)))
    utilization = _series_utilization(document)
    if utilization:
        charts.append(("Network utilization", timeseries_to_svg(
            utilization, title="Medium utilization per network",
            y_label="utilization", events=markers, y_min=0.0, y_max=1.05)))
    health = _series_health(document)
    if health:
        charts.append(("Ring health", timeseries_to_svg(
            health, title="Ring-health score per network (hysteresis model)",
            y_label="health score", events=markers, y_min=0.0, y_max=1.05)))
    skew = _series_skew(document)
    if any(value > 0 for pts in skew.values() for _, value in pts):
        charts.append(("Monitor pressure", timeseries_to_svg(
            skew, title="Monitor pressure (counter / condemnation threshold)",
            y_label="pressure", events=markers, y_min=0.0)))
    queue = _series_queue_depth(document)
    if any(value > 0 for pts in queue.values() for _, value in pts):
        charts.append(("Send queue", timeseries_to_svg(
            queue, title="SRP send-queue depth",
            y_label="messages queued", events=markers, y_min=0.0)))

    title = meta.get("title", "Totem RRP run report")
    header_rows = "".join(
        f"<tr><th>{html.escape(str(key))}</th>"
        f"<td>{html.escape(str(value))}</td></tr>"
        for key, value in sorted({**config, **meta}.items()))
    diagnoses = document.get("diagnoses", [])
    diagnosis_html = ("<ul>" + "".join(
        f"<li>{html.escape(d)}</li>" for d in diagnoses) + "</ul>"
        if diagnoses else "<p class='muted'>no faults diagnosed</p>")

    parts = [
        "<!DOCTYPE html>",
        "<html lang='en'><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        "<style>",
        "body{font-family:sans-serif;margin:24px auto;max-width:860px;"
        "color:#222}",
        "h1{font-size:22px} h2{font-size:16px;margin-top:28px}",
        "table{border-collapse:collapse;font-size:12px}",
        "th,td{border:1px solid #ccc;padding:3px 8px;text-align:left}",
        "th{background:#f4f4f4}",
        ".muted{color:#888;font-size:12px}",
        "pre{background:#f8f8f8;padding:8px;font-size:11px;overflow-x:auto}",
        "</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p class='muted'>virtual duration "
        f"{document.get('elapsed', 0.0):.3f}s · "
        f"{len(document.get('samples', []))} samples · "
        f"{len(document.get('events', []))} events</p>",
        f"<table>{header_rows}</table>",
    ]
    for heading, svg in charts:
        parts.append(f"<h2>{html.escape(heading)}</h2>")
        parts.append(svg)
    parts.append("<h2>Diagnosis (§3 fault-report reasoning)</h2>")
    parts.append(diagnosis_html)
    parts.append("<h2>Event timeline</h2>")
    parts.append(_events_table(document.get("events", [])))
    summary_text = document.get("summary", {}).get("text", "")
    if summary_text:
        parts.append("<h2>Cluster summary</h2>")
        parts.append(f"<pre>{html.escape(summary_text)}</pre>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(document: Dict[str, Any], path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_report(document))
    return path
