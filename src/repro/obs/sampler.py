"""Virtual-time telemetry sampling for one simulated cluster.

:class:`ClusterObservability` is the run-time face of :mod:`repro.obs`.
Its design follows the two rules that keep observation honest in a
deterministic simulator:

* **Pull, not push, for everything periodic.**  Every ``obs_interval``
  virtual seconds a sampler event reads the existing stats structures
  (``SrpStats``, ``LanStats``, ``CpuStats``, monitor counters) and derives
  windowed rates.  Reading is side-effect-free, so the protocol trajectory
  is unchanged — the sampler merely interleaves read-only callbacks into
  the event stream.
* **Push only for per-event signals, and only in ``full`` mode.**  Token
  rotation times (a histogram needs every observation, not a periodic
  glimpse), token-timer expiries and token-loss escalations are delivered
  through ``obs`` hooks on the SRP/RRP engines, guarded by the same
  ``is not None`` pattern as the invariant probes — with the hook detached
  (``off``/``sampled``), the hot path pays one attribute test per token.

The sampler also feeds the :class:`~repro.obs.health.RingHealthModel`: each
window's monitor pressures, wire loss and fault verdicts fold into the
per-network health score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .collect import (
    monitor_pressures,
    snapshot_lan,
    snapshot_node,
    snapshot_scheduler,
)
from .health import HealthInput, RingHealthModel
from .metrics import MetricRegistry

#: Events kept before the recorder starts dropping (bounded like Tracer).
MAX_EVENTS = 10_000


@dataclass(frozen=True)
class ObsEvent:
    """One discrete observability event on the run timeline."""

    time: float
    kind: str            # "fault-injected", "token-timeout", "token-loss", ...
    node: Optional[int] = None
    network: Optional[int] = None
    detail: str = ""

    def __str__(self) -> str:
        who = f" node {self.node}" if self.node is not None else ""
        where = f" net{self.network}" if self.network is not None else ""
        detail = f" — {self.detail}" if self.detail else ""
        return f"[t={self.time:.6f}]{who}{where} {self.kind}{detail}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "kind": self.kind,
            "node": self.node,
            "network": self.network,
            "detail": self.detail,
        }


class ClusterObservability:
    """Registry + sampler + health model for one :class:`SimCluster`."""

    def __init__(self, cluster, mode: str = "sampled",
                 interval: float = 0.01,
                 registry: Optional[MetricRegistry] = None,
                 metric_prefix: str = "",
                 extra_labels: Optional[Dict[str, Any]] = None) -> None:
        self._cluster = cluster
        self.mode = mode
        self.interval = interval
        #: ``registry``/``metric_prefix``/``extra_labels`` let several
        #: samplers share one registry with disambiguated series — the
        #: multiring cluster runs one sampler per ring group, all writing
        #: ``{"group": g}``-labelled metrics into a shared registry.  The
        #: defaults (own registry, no prefix, no labels) leave single-ring
        #: metric names and label sets exactly as before.
        self.registry = registry if registry is not None else MetricRegistry()
        self._prefix = metric_prefix
        self._extra_labels = dict(extra_labels) if extra_labels else {}
        self.num_networks = len(cluster.lans)
        self.health = RingHealthModel(self.num_networks)
        #: One row per sampling tick (the JSONL export writes these).
        self.samples: List[Dict[str, Any]] = []
        #: Discrete events (bounded; see :data:`MAX_EVENTS`).
        self.events: List[ObsEvent] = []
        self.events_dropped = 0
        self._timer = None
        self._started = False
        # Previous-sample cumulative values for windowed rates.
        self._prev_lan: List[Dict[str, float]] = [
            {"frames_offered": 0, "frames_lost": 0, "busy_time": 0.0}
            for _ in cluster.lans]
        self._prev_rotation: Dict[int, Dict[str, float]] = {}
        self._prev_time = 0.0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_node(self, node) -> None:
        """Install per-event hooks on one node (``full`` mode only).

        Called for every node at cluster construction and again for a fresh
        incarnation after :meth:`SimCluster.restart_node` — the abandoned
        incarnation keeps its hook, which is harmless: its counters stop
        moving once its timers are cancelled.
        """
        if self.mode == "full":
            node.srp.obs = self
            node.rrp.obs = self

    def start(self) -> None:
        """Take the t=0 baseline sample and begin the periodic schedule."""
        if self._started:
            return
        self._started = True
        self.sample()
        self._timer = self._cluster.scheduler.call_after(
            self.interval, self._on_sample_timer)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _on_sample_timer(self) -> None:
        self._timer = None
        self.sample()
        self._timer = self._cluster.scheduler.call_after(
            self.interval, self._on_sample_timer)

    # ------------------------------------------------------------------
    # metric naming (prefix + shared-registry label merging)
    # ------------------------------------------------------------------

    def _name(self, name: str) -> str:
        return self._prefix + name

    def _labels(self, labels: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        if not self._extra_labels:
            return labels if labels is not None else {}
        merged = dict(self._extra_labels)
        if labels:
            merged.update(labels)
        return merged

    # ------------------------------------------------------------------
    # event hooks (engines call these; ``full`` mode only)
    # ------------------------------------------------------------------

    def _emit(self, event: ObsEvent) -> None:
        if len(self.events) >= MAX_EVENTS:
            self.events_dropped += 1
            return
        self.events.append(event)

    def srp_rotation(self, node_id: int, rotation: float) -> None:
        """One token rotation completed at ``node_id`` (full mode)."""
        self.registry.histogram(
            self._name("totem_token_rotation_seconds"),
            labels=self._labels({"node": node_id}),
            help="Interval between successive token acceptances",
        ).observe(rotation)

    def srp_token_loss(self, node_id: int, state: str) -> None:
        """The token-loss timeout fired: membership protocol starting."""
        self.registry.counter(
            self._name("totem_token_loss_total"),
            labels=self._labels({"node": node_id}),
            help="Token-loss timeouts (membership escalations)").inc()
        self._emit(ObsEvent(time=self._cluster.now, kind="token-loss",
                            node=node_id, detail=f"in state {state}"))

    def engine_token_timeout(self, node_id: int, kind: str) -> None:
        """An RRP token timer expired (A4 / P3 progress path)."""
        self.registry.counter(
            self._name("totem_token_timeouts_total"),
            labels=self._labels({"node": node_id, "kind": kind}),
            help="RRP token-timer expiries by timer kind").inc()
        self._emit(ObsEvent(time=self._cluster.now, kind="token-timeout",
                            node=node_id, detail=kind))

    def record_fault_injection(self, network: int, label: str) -> None:
        """A scripted :class:`FaultPlan` transition just applied."""
        self._emit(ObsEvent(time=self._cluster.now, kind="fault-injected",
                            network=network, detail=label))

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    def sample(self) -> Dict[str, Any]:
        """Read every stats structure, derive windowed rates, fold health."""
        cluster = self._cluster
        now = cluster.now
        window = now - self._prev_time
        registry = self.registry

        # ----- per-network -----
        lans: List[Dict[str, Any]] = []
        loss_fraction: List[float] = []
        for i, lan in enumerate(cluster.lans):
            snap = snapshot_lan(lan, now)
            prev = self._prev_lan[i]
            offered = snap["frames_offered"] - prev["frames_offered"]
            lost = snap["frames_lost"] - prev["frames_lost"]
            busy = snap["busy_time"] - prev["busy_time"]
            snap["window_loss_fraction"] = (lost / offered) if offered else 0.0
            snap["window_utilization"] = (
                min(1.0, busy / window) if window > 0 else 0.0)
            loss_fraction.append(snap["window_loss_fraction"])
            self._prev_lan[i] = {
                "frames_offered": snap["frames_offered"],
                "frames_lost": snap["frames_lost"],
                "busy_time": snap["busy_time"],
            }
            lans.append(snap)
            labels = self._labels({"network": i})
            registry.counter(self._name("totem_lan_frames_sent_total"), labels,
                             help="Frames transmitted on the medium"
                             ).set_total(snap["frames_sent"])
            registry.counter(self._name("totem_lan_frames_lost_total"), labels,
                             help="Frames lost on the medium"
                             ).set_total(snap["frames_lost"])
            registry.counter(self._name("totem_lan_wire_bytes_total"), labels,
                             help="Bytes on the wire including overhead"
                             ).set_total(snap["wire_bytes"])
            registry.gauge(self._name("totem_lan_utilization"), labels,
                           help="Medium utilization over the last window"
                           ).set(snap["window_utilization"])

        # ----- per-node -----
        num_nodes = max(1, len(cluster.nodes))
        problem = [0.0] * self.num_networks
        skew = [0.0] * self.num_networks
        fault_votes = [0] * self.num_networks
        nodes: Dict[str, Dict[str, Any]] = {}
        for node_id in sorted(cluster.nodes):
            node = cluster.nodes[node_id]
            snap = snapshot_node(node, now)
            prev = self._prev_rotation.get(node_id)
            if prev is None:
                prev = {"total": 0.0, "count": 0}
            d_total = snap["rotation_time_total"] - prev["total"]
            d_count = snap["rotation_count"] - prev["count"]
            snap["window_rotation_mean"] = (
                d_total / d_count if d_count > 0 else 0.0)
            self._prev_rotation[node_id] = {
                "total": snap["rotation_time_total"],
                "count": snap["rotation_count"],
            }
            pressures = monitor_pressures(node, self.num_networks)
            snap["monitor_problem"] = pressures["problem"]
            snap["monitor_skew"] = pressures["skew"]
            for i in range(self.num_networks):
                if pressures["problem"][i] > problem[i]:
                    problem[i] = pressures["problem"][i]
                if pressures["skew"][i] > skew[i]:
                    skew[i] = pressures["skew"][i]
            for i in snap["faulty_networks"]:
                fault_votes[i] += 1
            nodes[str(node_id)] = snap
            labels = self._labels({"node": node_id})
            registry.counter(self._name("totem_msgs_delivered_total"), labels,
                             help="Application messages delivered in order"
                             ).mirror(snap["msgs_delivered"])
            registry.counter(self._name("totem_tokens_accepted_total"), labels,
                             help="Regular tokens accepted by the SRP"
                             ).mirror(snap["tokens_accepted"])
            registry.counter(self._name("totem_retransmissions_served_total"),
                             labels,
                             help="Retransmission requests served"
                             ).mirror(snap["retransmissions_served"])
            registry.counter(self._name("totem_token_timer_expiries_total"),
                             labels,
                             help="RRP token-timer expiries"
                             ).mirror(snap["token_timer_expiries"])
            registry.counter(self._name("totem_membership_changes_total"),
                             labels,
                             help="Regular configuration installations"
                             ).mirror(snap["membership_changes"])
            registry.gauge(self._name("totem_send_queue_depth"), labels,
                           help="Messages waiting for the token"
                           ).set(snap["send_queue_depth"])
            registry.gauge(self._name("totem_cpu_utilization"), labels,
                           help="Cumulative CPU utilization"
                           ).set(snap["cpu_utilization"])
            registry.gauge(self._name("totem_window_rotation_seconds"), labels,
                           help="Mean token rotation over the last window"
                           ).set(snap["window_rotation_mean"])

        # ----- health fold -----
        inputs = [
            HealthInput(problem_pressure=problem[i], skew_pressure=skew[i],
                        loss_fraction=loss_fraction[i],
                        fault_fraction=fault_votes[i] / num_nodes)
            for i in range(self.num_networks)
        ]
        before = len(self.health.transitions)
        health_rows = [
            {"network": h.network, "score": round(h.score, 6),
             "state": h.state}
            for h in self.health.update(now, inputs)
        ]
        for transition in self.health.transitions[before:]:
            self._emit(ObsEvent(
                time=transition.time, kind="health-transition",
                network=transition.network,
                detail=f"{transition.old_state} -> {transition.new_state} "
                       f"(score {transition.score:.2f})"))
        for row in health_rows:
            labels = self._labels({"network": row["network"]})
            registry.gauge(self._name("totem_ring_health_score"), labels,
                           help="Folded per-network health score [0, 1]"
                           ).set(row["score"])
            registry.gauge(self._name("totem_monitor_skew_pressure"), labels,
                           help="Worst recv-count lag / threshold"
                           ).set(skew[row["network"]])
            registry.gauge(self._name("totem_problem_pressure"), labels,
                           help="Worst problem counter / threshold"
                           ).set(problem[row["network"]])

        sched = snapshot_scheduler(cluster.scheduler)
        registry.counter(self._name("sim_events_processed_total"),
                         self._labels(),
                         help="Simulator events fired"
                         ).set_total(sched["events_processed"])
        registry.gauge(self._name("sim_pending_events"),
                       self._labels(),
                       help="Scheduler heap entries (incl. tombstones)"
                       ).set(sched["pending"])

        row = {
            "t": now,
            "nodes": nodes,
            "lans": lans,
            "health": health_rows,
            "scheduler": sched,
        }
        self.samples.append(row)
        self._prev_time = now
        return row


class MultiRingObservability:
    """Telemetry for a :class:`~repro.multiring.MultiRingCluster`.

    One :class:`ClusterObservability` sampler per ring group, all writing
    into a single shared registry with a ``{"group": g}`` label on every
    series — so an 8-ring run exports the same metric names as a single
    ring, disambiguated by label rather than by name.
    """

    def __init__(self, cluster, mode: str = "sampled",
                 interval: float = 0.01) -> None:
        self.mode = mode
        self.interval = interval
        self.registry = MetricRegistry()
        self.samplers: List[ClusterObservability] = []
        for group in sorted(cluster.groups):
            view = cluster.groups[group]
            sampler = ClusterObservability(
                view, mode=mode, interval=interval,
                registry=self.registry, extra_labels={"group": group})
            for node in view.nodes.values():
                sampler.attach_node(node)
            self.samplers.append(sampler)

    def start(self) -> None:
        for sampler in self.samplers:
            sampler.start()

    def stop(self) -> None:
        for sampler in self.samplers:
            sampler.stop()

    def record_fault_injection(self, network: int, label: str) -> None:
        """Faults hit the shared medium, so every group's timeline gets
        the marker."""
        for sampler in self.samplers:
            sampler.record_fault_injection(network, label)
