"""Exporters: JSONL sample streams, Prometheus text, and run documents.

All output is deterministic: keys are sorted, floats come straight from the
virtual-time computation (no wall clock anywhere), and metrics iterate in
registry order — the same seed and config always produce byte-identical
bytes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from ..errors import ConfigError
from .metrics import Histogram, MetricRegistry

RUN_SCHEMA_VERSION = 1


# ----------------------------------------------------------------------
# JSONL sample streams
# ----------------------------------------------------------------------

def samples_to_jsonl(samples: Iterable[Dict[str, Any]]) -> str:
    """One compact JSON object per line, keys sorted (deterministic)."""
    return "".join(
        json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
        for row in samples)


def write_jsonl(samples: Iterable[Dict[str, Any]], path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(samples_to_jsonl(samples))
    return path


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


# ----------------------------------------------------------------------
# Prometheus exposition format
# ----------------------------------------------------------------------

def prometheus_text(registry: MetricRegistry) -> str:
    """The text exposition format (one HELP/TYPE block per metric name).

    Histograms render as cumulative ``_bucket`` series plus ``_sum`` and
    ``_count``, exactly as a Prometheus client library would.
    """
    lines: List[str] = []
    seen_headers = set()
    for metric in registry.collect():
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        suffix = metric.label_string()
        if isinstance(metric, Histogram):
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                le = _bucket_labels(metric, f"{bound:g}")
                lines.append(f"{metric.name}_bucket{le} {cumulative}")
            lines.append(
                f"{metric.name}_bucket{_bucket_labels(metric, '+Inf')} "
                f"{metric.count}")
            lines.append(f"{metric.name}_sum{suffix} {_num(metric.total)}")
            lines.append(f"{metric.name}_count{suffix} {metric.count}")
        else:
            lines.append(f"{metric.name}{suffix} {_num(metric.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _bucket_labels(metric, le: str) -> str:
    pairs = list(metric.labels) + [("le", le)]
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


def _num(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


# ----------------------------------------------------------------------
# Run documents (what `repro.obs record` writes and `report` reads)
# ----------------------------------------------------------------------

def build_run_document(cluster, meta: Dict[str, Any] = None) -> Dict[str, Any]:
    """Fold a finished (or paused) run into one self-contained document.

    Requires the cluster to have been built with ``obs != "off"`` — the
    document is the sampler's time series plus everything pulled at export
    time: fault reports, membership milestones from the tracer, health
    transitions, diagnosis, and the cluster summary.
    """
    obs = getattr(cluster, "obs", None)
    if obs is None:
        raise ConfigError(
            "cluster has no observability attached; build it with "
            "ClusterConfig(obs='sampled') or obs='full'")
    summary = cluster.summary()
    events = [e.to_dict() for e in obs.events]
    for report in cluster.all_fault_reports():
        events.append({
            "time": report.time,
            "kind": f"fault-report:{report.kind.value}",
            "node": report.node,
            "network": report.network,
            "detail": report.detail,
        })
    for trace_event in cluster.tracer.events(category="membership"):
        if trace_event.event in ("gather", "ring-installed", "restart"):
            events.append({
                "time": trace_event.time,
                "kind": f"membership:{trace_event.event}",
                "node": trace_event.node,
                "network": None,
                "detail": trace_event.detail,
            })
    events.sort(key=lambda e: (e["time"], e["kind"],
                               e["node"] if e["node"] is not None else -1))
    config = cluster.config
    document = {
        "schema": RUN_SCHEMA_VERSION,
        "meta": dict(meta or {}),
        "config": {
            "num_nodes": config.num_nodes,
            "num_networks": config.totem.num_networks,
            "replication": config.totem.replication.value,
            "seed": config.seed,
            "obs": config.obs,
            "obs_interval": config.obs_interval,
        },
        "elapsed": cluster.now,
        "samples": obs.samples,
        "events": events,
        "events_dropped": obs.events_dropped,
        "health_transitions": [
            {"time": t.time, "network": t.network, "old_state": t.old_state,
             "new_state": t.new_state, "score": round(t.score, 6)}
            for t in obs.health.transitions
        ],
        "metrics": obs.registry.snapshot(),
        "diagnoses": [str(d) for d in cluster.diagnose_faults()],
        "summary": {
            "total_delivered": summary.total_delivered,
            "total_retransmissions": summary.total_retransmissions,
            "min_node_msgs_per_sec": summary.aggregate_msgs_per_sec,
            "text": summary.format(),
        },
    }
    return document


def write_run_document(document: Dict[str, Any], path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_run_document(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or "samples" not in document:
        raise ConfigError(f"{path} is not a repro.obs run document")
    if document.get("schema") != RUN_SCHEMA_VERSION:
        raise ConfigError(
            f"{path} has schema {document.get('schema')!r}, "
            f"expected {RUN_SCHEMA_VERSION}")
    return document
