"""repro.obs — deterministic telemetry for the Totem RRP simulator.

The subsystem splits into five small layers:

* :mod:`repro.obs.metrics` — a typed metric registry (counters, gauges,
  fixed-bucket streaming histograms).  No wall clock, no global state.
* :mod:`repro.obs.collect` — read-only snapshot helpers over the existing
  stats structures (``SrpStats``, ``LanStats``, monitors, scheduler).
* :mod:`repro.obs.sampler` — :class:`ClusterObservability`, the per-cluster
  sampler: periodic virtual-time sampling plus (in ``full`` mode) per-event
  hooks on the SRP/RRP engines.
* :mod:`repro.obs.health` — :class:`RingHealthModel`, folding monitor
  pressure, wire loss and fault verdicts into a per-network health score
  with hysteresis.
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — JSONL, Prometheus
  text and self-contained HTML/SVG run reports.

Enable it per cluster with ``ClusterConfig(obs="sampled")`` (read-only
periodic sampling) or ``obs="full"`` (sampling + event hooks); the default
``"off"`` constructs nothing and the hot path pays at most one attribute
test per token.  See ``docs/OBSERVABILITY.md``.
"""

from .export import (
    RUN_SCHEMA_VERSION,
    build_run_document,
    load_run_document,
    prometheus_text,
    read_jsonl,
    samples_to_jsonl,
    write_jsonl,
    write_run_document,
)
from .health import (
    DEGRADED,
    FAILED,
    HEALTHY,
    HealthInput,
    HealthTransition,
    RingHealthModel,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)
from .report import render_report, write_report
from .sampler import ClusterObservability, MultiRingObservability, ObsEvent

__all__ = [
    "RUN_SCHEMA_VERSION",
    "build_run_document",
    "load_run_document",
    "prometheus_text",
    "read_jsonl",
    "samples_to_jsonl",
    "write_jsonl",
    "write_run_document",
    "HEALTHY",
    "DEGRADED",
    "FAILED",
    "HealthInput",
    "HealthTransition",
    "RingHealthModel",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "render_report",
    "write_report",
    "ClusterObservability",
    "MultiRingObservability",
    "ObsEvent",
]
