"""Typed metric primitives and the registry (`repro.obs` core).

Three metric types, all deterministic and wall-clock-free:

* :class:`Counter` — a monotonically non-decreasing total (frames sent,
  tokens accepted, messages delivered).
* :class:`Gauge` — an instantaneous value that may move both ways (send
  queue depth, health score, medium utilisation).
* :class:`Histogram` — a streaming fixed-bucket histogram (token rotation
  time, per-sample event rates).  Buckets are chosen at construction and
  never rebalanced, so two runs with the same seed and config produce the
  same counts in the same buckets, byte for byte.

Metrics are identified by ``(name, labels)`` where ``labels`` is a sorted
tuple of ``(key, value)`` string pairs — the Prometheus data model, minus
wall-clock timestamps.  The :class:`MetricRegistry` is the single place a
cluster's metrics live; exporters (:mod:`repro.obs.export`) iterate it in
deterministic order.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigError

#: Canonical label form: a sorted tuple of (key, value) pairs.
Labels = Tuple[Tuple[str, str], ...]

#: Default buckets for token-rotation-style latencies (seconds): 100 µs to
#: ~1 s, roughly log-spaced, fine around the paper's ~1 ms rotations.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0)


def normalize_labels(labels) -> Labels:
    """Canonicalise a labels mapping/iterable into a sorted tuple of pairs."""
    if not labels:
        return ()
    if isinstance(labels, dict):
        items = labels.items()
    else:
        items = labels
    return tuple(sorted((str(k), str(v)) for k, v in items))


class Metric:
    """Common identity plumbing for every metric type."""

    __slots__ = ("name", "labels", "help")

    kind = "untyped"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def key(self) -> Tuple[str, Labels]:
        return (self.name, self.labels)

    def label_string(self) -> str:
        """The ``{k="v",...}`` suffix of the Prometheus exposition format."""
        if not self.labels:
            return ""
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return "{" + inner + "}"


class Counter(Metric):
    """A monotonically non-decreasing total."""

    __slots__ = ("value", "_raw")

    kind = "counter"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self.value: float = 0
        self._raw: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount

    def set_total(self, total: float) -> None:
        """Advance to an externally maintained cumulative total.

        Pull-style collection reads cumulative stats counters each sample;
        this keeps the metric monotone while mirroring them.
        """
        if total < self.value:
            raise ValueError(
                f"counter {self.name} cannot move backwards "
                f"({self.value} -> {total})")
        self.value = total

    def mirror(self, raw: float) -> None:
        """Advance by the delta of an external cumulative counter, staying
        monotone across resets (a restarted node's stats restart at zero —
        the Prometheus counter-reset convention)."""
        if raw >= self._raw:
            self.value += raw - self._raw
        else:
            self.value += raw
        self._raw = raw


class Gauge(Metric):
    """An instantaneous value."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram(Metric):
    """A streaming fixed-bucket histogram.

    ``bounds`` are the inclusive upper bounds of the finite buckets; an
    implicit +inf bucket catches the overflow.  No wall clock, no dynamic
    rebalancing — identical observation streams yield identical state.
    """

    __slots__ = ("bounds", "counts", "count", "total", "max")

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float] = LATENCY_BUCKETS,
                 labels: Labels = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ConfigError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ConfigError(
                f"histogram {name} bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value
        lo, hi = 0, len(self.bounds)
        # Binary search for the first bound >= value (the +inf bucket when
        # none is).
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bounds[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        self.counts[lo] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic bucket-interpolated quantile estimate.

        Exact to bucket resolution: the answer lies within the bucket that
        contains the q-th observation, interpolated linearly inside it.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = (self.bounds[i] if i < len(self.bounds)
                         else max(self.max, lower))
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            cumulative += bucket_count
        return self.max

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
        }


class MetricRegistry:
    """Get-or-create home of every metric of one cluster.

    Creation is idempotent per ``(name, labels)``; asking for an existing
    name with a different metric type raises (one name, one type — the
    Prometheus rule).
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Labels], Metric] = {}
        self._kinds: Dict[str, str] = {}

    def _get_or_create(self, cls, name: str, labels, help: str, **kwargs):
        canonical = normalize_labels(labels)
        key = (name, canonical)
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ConfigError(
                    f"metric {name} already registered as {metric.kind}, "
                    f"requested {cls.kind}")
            return metric
        expected = self._kinds.get(name)
        if expected is not None and expected != cls.kind:
            raise ConfigError(
                f"metric {name} already registered as {expected}, "
                f"requested {cls.kind}")
        metric = cls(name, labels=canonical, help=help, **kwargs)
        self._metrics[key] = metric
        self._kinds[name] = cls.kind
        return metric

    def counter(self, name: str, labels=(), help: str = "") -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, labels=(), help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(self, name: str, labels=(), help: str = "",
                  bounds: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, labels, help,
                                   bounds=bounds)

    def get(self, name: str, labels=()) -> Optional[Metric]:
        return self._metrics.get((name, normalize_labels(labels)))

    def collect(self) -> Iterator[Metric]:
        """Every metric, in deterministic (name, labels) order."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, float]:
        """Flat ``name{labels} -> value`` view (histograms: summary stats)."""
        out: Dict[str, float] = {}
        for metric in self.collect():
            full = metric.name + metric.label_string()
            if isinstance(metric, Histogram):
                for stat, value in metric.snapshot().items():
                    out[f"{full}:{stat}"] = value
            else:
                out[full] = metric.value  # type: ignore[attr-defined]
        return out


def is_finite(value: float) -> bool:
    """Shared guard for exporters (NaN/inf never serialise)."""
    return isinstance(value, (int, float)) and math.isfinite(value)
