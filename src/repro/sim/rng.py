"""Named, seeded random-number streams.

A simulation draws randomness from several logically independent sources
(per-network loss, per-node jitter, workload arrivals).  Giving each source
its own named stream keeps runs reproducible even when one consumer starts
drawing more numbers: the other streams are unaffected.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RngRegistry:
    """A registry of independent :class:`random.Random` streams.

    Streams are keyed by name; a stream's seed is derived from the registry
    seed and the stream name, so ``RngRegistry(7).stream("loss.net0")`` is the
    same sequence in every run and every process (CRC32 is stable, unlike
    ``hash``).
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use."""
        rng = self._streams.get(name)
        if rng is None:
            derived = (self._seed * 0x9E3779B1 + zlib.crc32(name.encode())) % (2**63)
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        derived = (self._seed * 0x85EBCA77 + zlib.crc32(name.encode())) % (2**63)
        return RngRegistry(derived)
