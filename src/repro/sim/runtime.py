"""The runtime interface that makes the protocol engines sans-io.

The SRP and RRP state machines never touch sockets, threads or wall clocks.
They ask a :class:`Runtime` for the time and for timers, and they hand
outgoing packets to a transport object injected at construction.  The same
engine code therefore runs unmodified on the discrete-event simulator
(:class:`SimRuntime`) and on asyncio UDP sockets
(:class:`repro.api.asyncio_node.AsyncioRuntime`).
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from .scheduler import EventScheduler, Timer


@runtime_checkable
class TimerHandle(Protocol):
    """Minimal timer interface the engines rely on."""

    def cancel(self) -> None: ...

    @property
    def active(self) -> bool: ...


@runtime_checkable
class Runtime(Protocol):
    """Clock and timer services for a protocol engine."""

    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock)."""
        ...

    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> TimerHandle:
        """Invoke ``callback(*args)`` after ``delay`` seconds."""
        ...

    def post(self, callback: Callable[..., None], *args: Any) -> None:
        """Invoke ``callback(*args)`` as soon as the current event finishes.

        Posted callbacks run at the current time, in FIFO order, before any
        later-scheduled event; they cannot be cancelled.  The batch receive
        path posts one apply per carried packet so a frame train dispatches
        as a burst of cheap same-timestamp events.
        """
        ...

    def drain_now(self, pairs) -> None:
        """Post a vector of ``(callback, args)`` pairs in one call.

        Bulk form of :meth:`post` with identical semantics: the pairs run
        FIFO at the current time, exactly as the equivalent sequence of
        individual posts would.  The batch receive path hands a whole frame
        train's applies over in one call instead of one ``post`` per packet.
        """
        ...


class SimRuntime:
    """A :class:`Runtime` backed by the discrete-event scheduler."""

    def __init__(self, scheduler: EventScheduler) -> None:
        self._scheduler = scheduler
        #: Bound straight through: ``post``/``drain_now`` sit on the batch
        #: hot path.
        self.post = scheduler.schedule_now
        self.drain_now = scheduler.drain_now

    def now(self) -> float:
        return self._scheduler.now()

    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        return self._scheduler.call_after(delay, callback, *args)
