"""Virtual clock for the discrete-event simulator."""

from __future__ import annotations

from ..errors import SimulationError


class VirtualClock:
    """A monotonically non-decreasing virtual clock.

    Only the event scheduler advances the clock; everything else reads it.
    Attempting to move time backwards is a bug in the scheduler and raises
    :class:`~repro.errors.SimulationError` immediately rather than corrupting
    the run.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t`` (scheduler use only)."""
        if t < self._now:
            raise SimulationError(
                f"clock cannot move backwards: {t} < {self._now}"
            )
        self._now = t

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now!r})"
