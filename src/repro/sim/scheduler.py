"""Event scheduler: the heart of the discrete-event simulator.

Events are callbacks scheduled at absolute virtual times.  Ties are broken
by insertion order, which makes every simulation fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from ..errors import SimulationError
from .clock import VirtualClock


class Timer:
    """Handle for a scheduled event; supports cancellation.

    Cancellation is O(1): the heap entry is tombstoned and skipped when it
    surfaces.  A timer that has fired or been cancelled is inert.
    """

    __slots__ = ("when", "_callback", "_args", "_cancelled", "_fired")

    def __init__(self, when: float, callback: Callable[..., None], args: tuple) -> None:
        self.when = when
        self._callback: Optional[Callable[..., None]] = callback
        self._args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        self._cancelled = True
        self._callback = None
        self._args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def active(self) -> bool:
        """True if the timer is still pending (not fired, not cancelled)."""
        return not self._cancelled and not self._fired

    def _fire(self) -> None:
        if self._cancelled or self._fired:
            return
        self._fired = True
        callback, args = self._callback, self._args
        self._callback, self._args = None, ()
        assert callback is not None
        callback(*args)


class EventScheduler:
    """Priority-queue driven virtual-time event loop.

    The scheduler owns the clock.  ``run_until`` / ``run`` pop events in
    (time, insertion-order) order, advance the clock, and fire callbacks.
    Callbacks may schedule further events, including at the current time.
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: list = []
        self._counter = itertools.count()
        self._events_processed = 0

    # ----- scheduling -----

    def now(self) -> float:
        return self.clock.now()

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self.clock.now():
            raise SimulationError(
                f"cannot schedule event in the past: {when} < {self.clock.now()}"
            )
        timer = Timer(when, callback, args)
        heapq.heappush(self._heap, (when, next(self._counter), timer))
        return timer

    def call_after(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.call_at(self.clock.now() + delay, callback, *args)

    # ----- execution -----

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    def pending(self) -> int:
        """Number of heap entries (including tombstoned cancellations)."""
        return len(self._heap)

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None if drained."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Fire the next live event.  Returns False if none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        when, _, timer = heapq.heappop(self._heap)
        self.clock.advance_to(when)
        timer._fire()
        self._events_processed += 1
        return True

    def run_until(self, t: float) -> None:
        """Run events with timestamps ``<= t``, then set the clock to ``t``.

        Events scheduled exactly at ``t`` do fire.
        """
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0][0] > t:
                break
            self.step()
        self.clock.advance_to(max(t, self.clock.now()))

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events fired by this call.  A protocol stack
        with periodic timers never drains, so most callers want
        :meth:`run_until`; ``run`` exists for bounded unit tests.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired
