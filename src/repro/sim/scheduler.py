"""Event scheduler: the heart of the discrete-event simulator.

Events are callbacks scheduled at absolute virtual times.  Ties are broken
by insertion order, which makes every simulation fully deterministic.

Performance notes (this module is the simulator's innermost loop):

* Heap entries are plain lists ``[when, counter, callback, args]``; the
  unique counter guarantees heap comparisons never reach the callback.  The
  fire-and-forget paths (CPU job completions, LAN frame arrivals) use
  :meth:`EventScheduler.schedule`, which allocates nothing but the entry —
  a :class:`Timer` handle is only built for callers that may cancel.
* ``run_until`` drains ready events in one tight loop instead of paying a
  ``step()`` + ``_drop_cancelled()`` call pair per event, and only touches
  the clock when the timestamp actually changes.
* Cancelled timers are tombstoned in place (O(1) cancel: the entry's
  callback slot is nulled) and normally discarded when they surface at the
  heap top.  A cancel-heavy workload — e.g. a long fault sweep re-arming
  token-loss timers every rotation — can accumulate far-future tombstones
  faster than they surface, degrading every push/pop to O(log dead).  When
  tombstones outnumber live entries (and exceed ``compact_min_dead``) the
  heap is compacted in place.  Compaction preserves the (time,
  insertion-order) total order exactly, so the tie-break contract is
  unaffected.
"""

from __future__ import annotations

import itertools
from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from .. import _fast
from ..errors import SimulationError
from .clock import VirtualClock

#: Heap-entry slots: ``[when, counter, callback, args]``.  ``callback`` is
#: ``None`` once the entry has fired or been cancelled (a tombstone).
_WHEN, _COUNTER, _CALLBACK, _ARGS = range(4)


def _entry_counter(entry: list) -> int:
    """Sort key recovering insertion order among same-time entries."""
    return entry[_COUNTER]


class Timer:
    """Handle for a scheduled event; supports cancellation.

    Cancellation is O(1): the heap entry is tombstoned and skipped when it
    surfaces.  A timer that has fired or been cancelled is inert.
    """

    __slots__ = ("when", "_entry", "_cancelled", "_scheduler")

    def __init__(self, when: float, entry: list,
                 scheduler: "EventScheduler") -> None:
        self.when = when
        self._entry = entry
        self._cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the timer from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        entry = self._entry
        if entry[_CALLBACK] is not None:  # still pending (not yet fired)
            entry[_CALLBACK] = None
            entry[_ARGS] = ()
            self._scheduler._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def active(self) -> bool:
        """True if the timer is still pending (not fired, not cancelled)."""
        return self._entry[_CALLBACK] is not None


class EventScheduler:
    """Priority-queue driven virtual-time event loop.

    The scheduler owns the clock.  ``run_until`` / ``run`` pop events in
    (time, insertion-order) order, advance the clock, and fire callbacks.
    Callbacks may schedule further events, including at the current time.
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: list = []
        #: FIFO of ``(callback, args)`` pairs posted via :meth:`schedule_now`
        #: for the *current* virtual time.  Drained before the heap is
        #: consulted, so a burst of same-timestamp events (e.g. the
        #: per-message applies of an arriving batch frame) dispatches with a
        #: deque append/popleft per event instead of a heap push/pop pair.
        self._now_queue: deque = deque()
        self._counter = itertools.count()
        self._events_processed = 0
        #: Tombstoned (cancelled, still-queued) entries currently in the heap.
        self._dead = 0
        #: Compaction trigger: tombstones must exceed this count AND
        #: outnumber the live entries.  Tests lower it to exercise the path.
        self.compact_min_dead = 256
        #: Number of tombstone compactions performed (observability).
        self.compactions = 0

    # ----- scheduling -----

    def now(self) -> float:
        return self.clock.now()

    def schedule(self, when: float, callback: Callable[..., None],
                 *args: Any) -> None:
        """Schedule a fire-and-forget event (no handle, not cancellable).

        The fast path for the simulator's two highest-rate event sources
        (CPU job completions and frame arrivals), which never cancel.
        """
        if when < self.clock._now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < {self.clock._now}"
            )
        heappush(self._heap, [when, next(self._counter), callback, args])

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute virtual time ``when``."""
        if when < self.clock._now:
            raise SimulationError(
                f"cannot schedule event in the past: {when} < {self.clock._now}"
            )
        entry = [when, next(self._counter), callback, args]
        heappush(self._heap, entry)
        return Timer(when, entry, self)

    def call_after(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        when = self.clock._now + delay
        entry = [when, next(self._counter), callback, args]
        heappush(self._heap, entry)
        return Timer(when, entry, self)

    def schedule_now(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule a fire-and-forget event at the *current* virtual time.

        The event fires after the currently-running callback returns, before
        the clock advances past ``now()``.  Now-events dispatch in FIFO order
        among themselves and *before* any not-yet-popped heap entry — even a
        heap entry sharing the current timestamp — which is exactly the
        vectorized dispatch the batch hot path wants: an arriving batch
        frame posts one now-event per carried packet and the scheduler
        drains them back-to-back without a heap push/pop per event.

        Not cancellable; callers that may cancel use :meth:`call_at`.
        """
        self._now_queue.append((callback, args))

    def drain_now(self, pairs) -> None:
        """Post a whole vector of ready callbacks at the current time.

        ``pairs`` is an iterable of ``(callback, args)`` tuples — exactly the
        now-queue's entry shape — appended FIFO in one deque ``extend``.  The
        bulk form of :meth:`schedule_now`: a batch frame's per-packet applies
        post as one call instead of one ``schedule_now`` per packet, and the
        queued entries (and therefore dispatch order, ``events_processed``
        accounting and the explorer's reified view) are byte-identical to the
        equivalent sequence of individual posts.
        """
        self._now_queue.extend(pairs)

    # ----- tombstone accounting -----

    @property
    def dead_entries(self) -> int:
        """Tombstoned heap entries awaiting discard or compaction."""
        return self._dead

    def _note_cancelled(self) -> None:
        """A pending timer was cancelled; compact if tombstones dominate."""
        self._dead += 1
        if (self._dead > self.compact_min_dead
                and self._dead > len(self._heap) - self._dead):
            self._compact()

    def _compact(self) -> None:
        """Drop every tombstone from the heap, in place.

        In place (``heap[:] =``) so aliases held by a running ``run_until``
        loop stay valid.  Entries keep their (when, counter) keys, so
        re-heapifying cannot change the order in which live timers fire.

        The tombstone count is decremented by the number of entries actually
        removed rather than reset to zero: the two are equal today, but a
        recount keeps the accounting correct by construction even if a
        future caller tombstones entries it temporarily holds out of the
        heap.  ``dead_entries`` must never go negative — a double-cancelled
        handle whose entry was already compacted away contributes nothing
        (``Timer.cancel`` re-checks the entry's callback slot, which stays
        ``None`` forever once tombstoned).
        """
        heap = self._heap
        live = [entry for entry in heap if entry[_CALLBACK] is not None]
        removed = len(heap) - len(live)
        heap[:] = live
        heapify(heap)
        self._dead = max(0, self._dead - removed)
        self.compactions += 1

    # ----- execution -----

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    def pending(self) -> int:
        """Number of queued entries (tombstones and now-events included)."""
        return len(self._heap) + len(self._now_queue)

    def metrics(self) -> dict:
        """Simulator-core health counters (for :mod:`repro.obs`)."""
        return {
            "events_processed": self._events_processed,
            "pending": len(self._heap) + len(self._now_queue),
            "dead_entries": self._dead,
            "compactions": self.compactions,
        }

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next live event, or None if drained."""
        if self._now_queue:
            return self.clock._now
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][_WHEN]

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][_CALLBACK] is None:
            heappop(heap)
            self._dead -= 1

    # ----- explorer hooks (repro.check explore) -----
    #
    # The model checker drives the scheduler one event at a time, but needs
    # to *choose* which of several same-time events fires next (and to model
    # frame loss by discarding a pending arrival).  These hooks expose just
    # enough of the heap to do that without disturbing the (time,
    # insertion-order) contract the normal run paths rely on: a chosen entry
    # is fired and tombstoned in place, so the regular pop paths discard it
    # later with the existing dead-entry accounting.

    def ready_entries(self) -> list:
        """Live heap entries sharing the earliest pending timestamp.

        Returned in insertion order (the default tie-break), so
        ``fire_entry(ready_entries()[0])`` reproduces exactly what
        :meth:`step` would have done.  O(heap) scan — this is an exploration
        hook, not a hot path.

        Now-events are first reified into ordinary heap entries at the
        current time, so the explorer can choose, fire or discard a batch's
        per-packet applies like any other pending event.
        """
        self._reify_now_queue()
        self._drop_cancelled()
        heap = self._heap
        if not heap:
            return []
        when = heap[0][_WHEN]
        ready = [entry for entry in heap
                 if entry[_WHEN] == when and entry[_CALLBACK] is not None]
        ready.sort(key=_entry_counter)
        return ready

    def fire_entry(self, entry: list) -> None:
        """Fire one specific pending entry now, out of heap order.

        The entry must be live (not fired, not cancelled) and not in the
        clock's past.  It is tombstoned in place before the callback runs,
        exactly like the normal execution paths, so handles and the
        dead-entry accounting observe a fired timer.
        """
        callback = entry[_CALLBACK]
        if callback is None:
            raise SimulationError("entry already fired or cancelled")
        when = entry[_WHEN]
        if when < self.clock._now:
            raise SimulationError(
                f"cannot fire entry in the past: {when} < {self.clock._now}")
        args = entry[_ARGS]
        entry[_CALLBACK] = None
        entry[_ARGS] = ()
        self._dead += 1
        self.clock.advance_to(when)
        callback(*args)
        self._events_processed += 1

    def discard_entry(self, entry: list) -> None:
        """Tombstone a pending entry without firing it.

        The explorer's model of frame loss: a scheduled arrival that never
        happens.  Accounting matches :meth:`Timer.cancel`.
        """
        if entry[_CALLBACK] is None:
            raise SimulationError("entry already fired or cancelled")
        entry[_CALLBACK] = None
        entry[_ARGS] = ()
        self._dead += 1

    def _reify_now_queue(self) -> None:
        """Turn queued now-events into heap entries at the current time.

        Fresh counters preserve their FIFO order among themselves; relative
        to *other* entries already queued at the current timestamp they sort
        last, which is deterministic (what matters for exploration) even
        though the ``run_until`` fast path dispatches them first.
        """
        now = self.clock._now
        while self._now_queue:
            callback, args = self._now_queue.popleft()
            heappush(self._heap, [now, next(self._counter), callback, args])

    def step(self) -> bool:
        """Fire the next live event.  Returns False if none remain."""
        now_queue = self._now_queue
        if now_queue:
            callback, args = now_queue.popleft()
            callback(*args)
            self._events_processed += 1
            return True
        self._drop_cancelled()
        if not self._heap:
            return False
        entry = heappop(self._heap)
        callback = entry[_CALLBACK]
        entry[_CALLBACK] = None
        self.clock.advance_to(entry[_WHEN])
        callback(*entry[_ARGS])
        self._events_processed += 1
        return True

    def run_until(self, t: float) -> None:
        """Run events with timestamps ``<= t``, then set the clock to ``t``.

        Events scheduled exactly at ``t`` do fire.
        """
        fast = _fast.scheduler_run_until
        if fast is not None:
            # The compiled twin of the loop below (repro._fast._corec);
            # byte-identical dispatch order and accounting, selected per
            # call so repro.core.accel can flip modes mid-process.
            fast(self, t)
            return
        # Hot loop: one heappop per entry, no per-event helper calls.  The
        # heap list is aliased, never rebound (push/pop/_compact all mutate
        # in place), so callbacks scheduling further events remain visible;
        # the deque likewise is only ever mutated, so ``pop_now`` stays
        # valid across callbacks.
        heap = self._heap
        now_queue = self._now_queue
        pop_now = now_queue.popleft
        clock = self.clock
        events = 0
        try:
            while True:
                # Vectorized same-timestamp dispatch: now-events drain FIFO
                # from the deque, one locally-bound popleft + call per
                # event, without a heap push/pop pair or a clock comparison
                # each.
                while now_queue:
                    callback, args = pop_now()
                    callback(*args)
                    events += 1
                if not heap:
                    break
                when = heap[0][_WHEN]
                if when > t:
                    break
                entry = heappop(heap)
                callback = entry[_CALLBACK]
                if callback is None:
                    self._dead -= 1
                    continue
                # Null the slot before the callback runs: a handle queried
                # (or cancelled) from inside its own callback sees a fired
                # timer.
                entry[_CALLBACK] = None
                if when != clock._now:
                    # Flush the batched event count on every clock advance so
                    # observers sampling mid-run (repro.obs) read an accurate
                    # monotone value; the same-timestamp fast path stays lean.
                    self._events_processed += events
                    events = 0
                    clock.advance_to(when)
                callback(*entry[_ARGS])
                events += 1
                # Same-timestamp run: keep draining heap entries that share
                # ``when`` without re-touching the clock or re-comparing
                # against ``t`` (when <= t already held).  The run pauses the
                # moment a callback posts a now-event — now-events must fire
                # before any not-yet-popped heap entry, even one at the same
                # timestamp.
                while not now_queue and heap and heap[0][_WHEN] == when:
                    entry = heappop(heap)
                    callback = entry[_CALLBACK]
                    if callback is None:
                        self._dead -= 1
                        continue
                    entry[_CALLBACK] = None
                    callback(*entry[_ARGS])
                    events += 1
        finally:
            self._events_processed += events
        clock.advance_to(max(t, clock._now))

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` fire).

        Returns the number of events fired by this call.  A protocol stack
        with periodic timers never drains, so most callers want
        :meth:`run_until`; ``run`` exists for bounded unit tests.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired
