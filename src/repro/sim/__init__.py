"""Deterministic discrete-event simulation kernel.

This package replaces the paper's physical testbed with a virtual-time event
scheduler.  Every run is a pure function of its inputs: events at equal
timestamps fire in insertion order, and all randomness flows through named,
seeded streams (:mod:`repro.sim.rng`).
"""

from .clock import VirtualClock
from .scheduler import EventScheduler, Timer
from .rng import RngRegistry
from .runtime import Runtime, SimRuntime

__all__ = [
    "VirtualClock",
    "EventScheduler",
    "Timer",
    "RngRegistry",
    "Runtime",
    "SimRuntime",
]
